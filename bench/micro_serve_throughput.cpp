// Query-server benchmarks: single-connection throughput, many-connection
// churn, and an idle-fleet soak.
//
// The single-connection regimes bracket the serving cost:
//  * ping           — pure transport + dispatch floor
//  * summary cold   — decode + full NoiseAnalysis every request (cache off)
//  * summary cached — the steady state a dashboard sees (result-cache hit)
// and each runs on both wires (JSON line protocol and OSNB binary framing),
// so the cached JSON-vs-OSNB gap is the envelope-encoding cost in isolation.
//
// The readiness-loop regimes are what PR 8 is for:
//  * churn — connections that connect, issue one cached query, disconnect;
//    the accept path and connection-table cost, not the query cost.
//  * pipelined — M clients each writing a burst of requests in one segment;
//    exercises the buffered-frame re-pump (frames poll(2) cannot see).
//  * soak — N idle connections parked on the loop while one hot client
//    measures cached-summary RTT percentiles. Under the old thread-per-
//    connection design N idle clients pinned N workers and the hot client
//    starved; on the event loop they cost one epoll registration each. The
//    soak asserts p99 stays within 2x the single-client cached RTT measured
//    moments earlier, and OSN_SOAK_CONNS=10000 (the acceptance run) scales
//    the fleet from the default 1000.
//
// OSN_BENCH_SMOKE=1 shrinks the synthetic trace and the fleets so the ctest
// smoke run finishes in seconds.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace osn;

constexpr std::uint16_t kCpus = 4;

bool smoke_run() {
  const char* v = std::getenv("OSN_BENCH_SMOKE");
  return v != nullptr && v[0] == '1';
}

std::uint64_t trace_steps() { return smoke_run() ? 2'000 : 20'000; }

std::size_t soak_conns() {
  if (const char* v = std::getenv("OSN_SOAK_CONNS")) {
    const long n = std::atol(v);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return smoke_run() ? 64 : 1'000;
}

/// Writes a synthetic analyzable trace into a private catalog dir once.
const std::string& catalog_dir() {
  static std::string dir;
  if (!dir.empty()) return dir;
  dir = "/tmp/osn_micro_serve";
  std::filesystem::create_directories(dir);
  trace::OsntStreamWriter writer(dir + "/bench.osnt", 8192);
  for (std::uint64_t step = 0; step < trace_steps(); ++step) {
    for (std::uint16_t cpu = 0; cpu < kCpus; ++cpu) {
      tracebuf::EventRecord entry;
      entry.timestamp = step * 2'000 + cpu * 17;
      entry.cpu = cpu;
      entry.pid = 1 + cpu;
      entry.event = static_cast<std::uint16_t>(trace::EventType::kIrqEntry);
      entry.arg = 0;
      writer.append(entry);
      tracebuf::EventRecord exit = entry;
      exit.timestamp += 300 + (step % 7) * 50;
      exit.event = static_cast<std::uint16_t>(trace::EventType::kIrqExit);
      writer.append(exit);
    }
  }
  trace::TraceMeta meta;
  meta.n_cpus = kCpus;
  meta.tick_period_ns = 10 * kNsPerMs;
  meta.workload = "micro_serve";
  meta.start_ns = 0;
  meta.end_ns = trace_steps() * 2'000 + 10'000;
  std::map<Pid, trace::TaskInfo> tasks;
  for (std::uint16_t cpu = 0; cpu < kCpus; ++cpu) {
    trace::TaskInfo info;
    info.pid = 1 + cpu;
    info.name = "rank" + std::to_string(cpu);
    info.is_app = true;
    tasks[info.pid] = info;
  }
  writer.finish(meta, tasks);
  return dir;
}

std::unique_ptr<serve::Server> start_server(std::uint64_t result_cache_bytes,
                                            std::size_t max_inflight = 32) {
  serve::ServerOptions options;
  options.dir = catalog_dir();
  options.port = 0;
  options.workers = 4;
  options.max_inflight = max_inflight;
  options.result_cache_bytes = result_cache_bytes;
  auto server = std::make_unique<serve::Server>(options);
  if (!server->start()) {
    std::fprintf(stderr, "cannot start bench server\n");
    std::exit(1);
  }
  return server;
}

serve::Request summary_request() {
  serve::Request req;
  req.id = 1;
  req.op = serve::Op::kSummary;
  req.trace = "bench";
  return req;
}

serve::Wire wire_arg(const benchmark::State& state) {
  return state.range(0) != 0 ? serve::Wire::kBinary : serve::Wire::kJson;
}

void set_wire_label(benchmark::State& state) {
  state.SetLabel(serve::wire_name(wire_arg(state)));
}

void run_loop(benchmark::State& state, serve::Server& server,
              const serve::Request& req) {
  serve::Client client("127.0.0.1", server.port(), Deadline::after(sec(10)),
                       wire_arg(state));
  std::uint64_t requests = 0;
  for (auto _ : state) {
    const serve::Response resp = client.call(req, Deadline::after(sec(60)));
    if (!resp.ok) state.SkipWithError(("query failed: " + resp.message).c_str());
    benchmark::DoNotOptimize(resp.payload.data());
    ++requests;
  }
  state.counters["req/s"] =
      benchmark::Counter(static_cast<double>(requests), benchmark::Counter::kIsRate);
}

// ---------------------------------------------------------------------------
// Single-connection regimes, per wire (0 = json, 1 = binary)
// ---------------------------------------------------------------------------

void BM_ServePing(benchmark::State& state) {
  set_wire_label(state);
  auto server = start_server(64 << 20);
  serve::Request req;
  req.id = 1;
  req.op = serve::Op::kPing;
  run_loop(state, *server, req);
  server->stop();
}
BENCHMARK(BM_ServePing)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_ServeSummaryCold(benchmark::State& state) {
  set_wire_label(state);
  // A zero-byte result cache forces the full decode + analysis every time
  // (the model cache is also disabled so the decode cost is included).
  serve::ServerOptions options;
  options.dir = catalog_dir();
  options.port = 0;
  options.workers = 4;
  options.result_cache_bytes = 0;
  options.model_cache_bytes = 0;
  serve::Server server(options);
  if (!server.start()) {
    std::fprintf(stderr, "cannot start bench server\n");
    std::exit(1);
  }
  run_loop(state, server, summary_request());
  server.stop();
}
BENCHMARK(BM_ServeSummaryCold)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ServeSummaryCached(benchmark::State& state) {
  set_wire_label(state);
  auto server = start_server(64 << 20);
  const serve::Request req = summary_request();
  // Warm the cache outside the timed loop.
  {
    serve::Client warm("127.0.0.1", server->port(), Deadline::after(sec(10)));
    warm.call(req, Deadline::after(sec(60)));
  }
  run_loop(state, *server, req);
  server->stop();
}
BENCHMARK(BM_ServeSummaryCached)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Readiness-loop regimes
// ---------------------------------------------------------------------------

void BM_ServeConnectionChurn(benchmark::State& state) {
  // Connect, one cached query, disconnect — per iteration. Measures the
  // accept path, codec detection, and connection-table add/remove, with the
  // query cost pinned to a result-cache hit.
  set_wire_label(state);
  auto server = start_server(64 << 20);
  const serve::Request req = summary_request();
  {
    serve::Client warm("127.0.0.1", server->port(), Deadline::after(sec(10)));
    warm.call(req, Deadline::after(sec(60)));
  }
  std::uint64_t conns = 0;
  for (auto _ : state) {
    serve::Client client("127.0.0.1", server->port(), Deadline::after(sec(10)),
                         wire_arg(state));
    const serve::Response resp = client.call(req, Deadline::after(sec(60)));
    if (!resp.ok) state.SkipWithError(("query failed: " + resp.message).c_str());
    benchmark::DoNotOptimize(resp.payload.data());
    ++conns;
  }
  state.counters["conn/s"] =
      benchmark::Counter(static_cast<double>(conns), benchmark::Counter::kIsRate);
  server->stop();
}
BENCHMARK(BM_ServeConnectionChurn)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_ServePipelinedBurst(benchmark::State& state) {
  // One connection writes a burst of pings in a single segment, then reads
  // all responses. Past the first dispatch the remaining frames sit in the
  // connection's buffer where the poller cannot see them — this measures
  // the finish()-driven re-pump that serves them anyway.
  const std::size_t burst = static_cast<std::size_t>(state.range(0));
  auto server = start_server(64 << 20);
  TcpStream s = TcpStream::connect("127.0.0.1", server->port(),
                                   Deadline::after(sec(10)));
  if (!s.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  serve::Request ping;
  ping.op = serve::Op::kPing;
  std::string burst_bytes;
  for (std::size_t i = 0; i < burst; ++i) {
    ping.id = i + 1;
    burst_bytes += ping.to_line() + "\n";
  }
  std::uint64_t requests = 0;
  for (auto _ : state) {
    if (!s.send_all(burst_bytes, Deadline::after(sec(10)))) {
      state.SkipWithError("send failed");
      break;
    }
    for (std::size_t i = 0; i < burst; ++i) {
      if (!s.recv_line(Deadline::after(sec(30))).has_value()) {
        state.SkipWithError("missing response");
        break;
      }
      ++requests;
    }
  }
  state.counters["req/s"] =
      benchmark::Counter(static_cast<double>(requests), benchmark::Counter::kIsRate);
  server->stop();
}
BENCHMARK(BM_ServePipelinedBurst)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_ServeIdleSoak(benchmark::State& state) {
  // Park a fleet of idle connections on the loop, then measure cached-summary
  // RTT percentiles from one hot client threading through them. The
  // acceptance property: idle connections are epoll registrations, not
  // workers, so p99 must stay within 2x the fleet-free median RTT.
  set_wire_label(state);
  const std::size_t fleet_size = soak_conns();
  auto server = start_server(64 << 20);
  const serve::Request req = summary_request();
  serve::Client hot("127.0.0.1", server->port(), Deadline::after(sec(10)),
                    wire_arg(state));
  hot.call(req, Deadline::after(sec(60)));  // warm the result cache

  // Baseline: single-client cached RTT median, before the fleet exists.
  constexpr int kBaselineSamples = 50;
  std::vector<DurNs> baseline;
  baseline.reserve(kBaselineSamples);
  for (int i = 0; i < kBaselineSamples; ++i) {
    const TimeNs t0 = monotonic_now_ns();
    const serve::Response resp = hot.call(req, Deadline::after(sec(60)));
    if (!resp.ok) {
      state.SkipWithError(("baseline failed: " + resp.message).c_str());
      return;
    }
    baseline.push_back(monotonic_now_ns() - t0);
  }
  std::sort(baseline.begin(), baseline.end());
  const DurNs baseline_p50 = baseline[baseline.size() / 2];
  const DurNs baseline_p99 = baseline[baseline.size() * 99 / 100];

  std::vector<TcpStream> fleet;
  fleet.reserve(fleet_size);
  for (std::size_t i = 0; i < fleet_size; ++i) {
    TcpStream idle = TcpStream::connect("127.0.0.1", server->port(),
                                        Deadline::after(sec(30)));
    if (!idle.ok()) {
      state.SkipWithError("fleet connect failed (check ulimit -n)");
      return;
    }
    fleet.push_back(std::move(idle));
  }

  std::vector<DurNs> rtts;
  for (auto _ : state) {
    const TimeNs t0 = monotonic_now_ns();
    const serve::Response resp = hot.call(req, Deadline::after(sec(60)));
    if (!resp.ok) state.SkipWithError(("query failed: " + resp.message).c_str());
    benchmark::DoNotOptimize(resp.payload.data());
    rtts.push_back(monotonic_now_ns() - t0);
  }
  std::sort(rtts.begin(), rtts.end());
  const DurNs p50 = rtts.empty() ? 0 : rtts[rtts.size() / 2];
  const DurNs p99 = rtts.empty() ? 0 : rtts[rtts.size() * 99 / 100];
  state.counters["idle_conns"] = static_cast<double>(fleet_size);
  state.counters["p50_us"] = static_cast<double>(p50) / 1e3;
  state.counters["p99_us"] = static_cast<double>(p99) / 1e3;
  state.counters["baseline_p50_us"] = static_cast<double>(baseline_p50) / 1e3;
  state.counters["baseline_p99_us"] = static_cast<double>(baseline_p99) / 1e3;

  // The acceptance gate, comparing like quantiles (p99 vs fleet-free p99:
  // tail RTT is dominated by scheduler jitter even with zero idle conns, so
  // gating the tail against the fleet-free *median* would flake on any
  // loaded box). Smoke runs take a single benchmark iteration, so "p99" is
  // one sample; enforce only on real (multi-iteration) runs.
  if (rtts.size() >= 100 && p99 > 2 * baseline_p99) {
    std::fprintf(stderr,
                 "soak regression: p99 %.1f us > 2x fleet-free p99 %.1f us "
                 "with %zu idle conns\n",
                 static_cast<double>(p99) / 1e3,
                 static_cast<double>(baseline_p99) / 1e3, fleet_size);
    state.SkipWithError("idle fleet inflated hot-path p99 beyond 2x baseline");
  }
  server->stop();
}
BENCHMARK(BM_ServeIdleSoak)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
