// Query-server throughput: requests/sec through the full in-process stack
// (TCP loopback, line protocol, catalog lease, caches, analysis).
//
// Three regimes bracket the serving cost:
//  * ping           — pure transport + dispatch floor
//  * summary cold   — decode + full NoiseAnalysis every request (cache off)
//  * summary cached — the steady state a dashboard sees (result-cache hit)
// The cached/cold gap is the ResultCache's earned speedup; the ping/cached
// gap is what the protocol itself costs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "export/json.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace osn;

constexpr std::uint16_t kCpus = 4;
constexpr std::uint64_t kSteps = 20'000;

/// Writes a synthetic analyzable trace into a private catalog dir once.
const std::string& catalog_dir() {
  static std::string dir;
  if (!dir.empty()) return dir;
  dir = "/tmp/osn_micro_serve";
  std::filesystem::create_directories(dir);
  trace::OsntStreamWriter writer(dir + "/bench.osnt", 8192);
  for (std::uint64_t step = 0; step < kSteps; ++step) {
    for (std::uint16_t cpu = 0; cpu < kCpus; ++cpu) {
      tracebuf::EventRecord entry;
      entry.timestamp = step * 2'000 + cpu * 17;
      entry.cpu = cpu;
      entry.pid = 1 + cpu;
      entry.event = static_cast<std::uint16_t>(trace::EventType::kIrqEntry);
      entry.arg = 0;
      writer.append(entry);
      tracebuf::EventRecord exit = entry;
      exit.timestamp += 300 + (step % 7) * 50;
      exit.event = static_cast<std::uint16_t>(trace::EventType::kIrqExit);
      writer.append(exit);
    }
  }
  trace::TraceMeta meta;
  meta.n_cpus = kCpus;
  meta.tick_period_ns = 10 * kNsPerMs;
  meta.workload = "micro_serve";
  meta.start_ns = 0;
  meta.end_ns = kSteps * 2'000 + 10'000;
  std::map<Pid, trace::TaskInfo> tasks;
  for (std::uint16_t cpu = 0; cpu < kCpus; ++cpu) {
    trace::TaskInfo info;
    info.pid = 1 + cpu;
    info.name = "rank" + std::to_string(cpu);
    info.is_app = true;
    tasks[info.pid] = info;
  }
  writer.finish(meta, tasks);
  return dir;
}

std::unique_ptr<serve::Server> start_server(std::uint64_t result_cache_bytes) {
  serve::ServerOptions options;
  options.dir = catalog_dir();
  options.port = 0;
  options.workers = 4;
  options.result_cache_bytes = result_cache_bytes;
  auto server = std::make_unique<serve::Server>(options);
  if (!server->start()) {
    std::fprintf(stderr, "cannot start bench server\n");
    std::exit(1);
  }
  return server;
}

void run_loop(benchmark::State& state, serve::Server& server, const serve::Request& req) {
  serve::Client client("127.0.0.1", server.port(), Deadline::after(sec(10)));
  std::uint64_t requests = 0;
  for (auto _ : state) {
    const serve::Response resp = client.call(req, Deadline::after(sec(60)));
    if (!resp.ok) state.SkipWithError(("query failed: " + resp.message).c_str());
    benchmark::DoNotOptimize(resp.payload.data());
    ++requests;
  }
  state.counters["req/s"] =
      benchmark::Counter(static_cast<double>(requests), benchmark::Counter::kIsRate);
}

void BM_ServePing(benchmark::State& state) {
  auto server = start_server(64 << 20);
  serve::Request req;
  req.id = 1;
  req.op = serve::Op::kPing;
  run_loop(state, *server, req);
  server->stop();
}
BENCHMARK(BM_ServePing)->Unit(benchmark::kMicrosecond);

void BM_ServeSummaryCold(benchmark::State& state) {
  // A zero-byte result cache forces the full decode + analysis every time
  // (the model cache is also disabled so the decode cost is included).
  serve::ServerOptions options;
  options.dir = catalog_dir();
  options.port = 0;
  options.workers = 4;
  options.result_cache_bytes = 0;
  options.model_cache_bytes = 0;
  serve::Server server(options);
  if (!server.start()) {
    std::fprintf(stderr, "cannot start bench server\n");
    std::exit(1);
  }
  serve::Request req;
  req.id = 1;
  req.op = serve::Op::kSummary;
  req.trace = "bench";
  run_loop(state, server, req);
  server.stop();
}
BENCHMARK(BM_ServeSummaryCold)->Unit(benchmark::kMillisecond);

void BM_ServeSummaryCached(benchmark::State& state) {
  auto server = start_server(64 << 20);
  serve::Request req;
  req.id = 1;
  req.op = serve::Op::kSummary;
  req.trace = "bench";
  // Warm the cache outside the timed loop.
  {
    serve::Client warm("127.0.0.1", server->port(), Deadline::after(sec(10)));
    warm.call(req, Deadline::after(sec(60)));
  }
  run_loop(state, *server, req);
  server->stop();
}
BENCHMARK(BM_ServeSummaryCached)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
