// Figure 1 — Measuring OS noise using FTQ (validation of the methodology).
//
// Runs FTQ on the simulated node, builds LTTNG-NOISE's synthetic OS noise
// chart for the same run, and quantifies the agreement the paper argues
// visually (Figs 1a-1d): high correlation, FTQ never *under*-reporting by
// more than its operation granularity, and a slight systematic FTQ
// overestimate (partial operations do not count).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "export/ascii.hpp"
#include "export/csv.hpp"
#include "noise/chart.hpp"
#include "noise/ftq_compare.hpp"
#include "workloads/ftq.hpp"

int main() {
  using namespace osn;
  bench::print_header("Figure 1", "FTQ vs LTTng-noise synthetic OS noise chart");

  workloads::FtqParams params;
  params.n_quanta = 3000;  // 3 s, as in a representative FTQ run
  workloads::FtqWorkload ftq(params);
  std::fprintf(stderr, "[run]   FTQ for %zu quanta...\n", params.n_quanta);
  const workloads::RunResult run = workloads::run_workload(ftq, bench::bench_seed());

  noise::NoiseAnalysis analysis(run.trace);
  const noise::SyntheticChart chart =
      noise::build_chart(analysis, ftq.ftq_pid(), ftq.samples().front().start,
                         params.quantum, ftq.samples().size());
  const noise::FtqComparison cmp =
      noise::compare_ftq(ftq.samples(), ftq.nmax(), params.op_time, chart);

  std::printf("quanta compared:            %zu (quantum %s, basic op %s)\n",
              cmp.ftq_noise_ns.size(), fmt_duration(params.quantum).c_str(),
              fmt_duration(params.op_time).c_str());
  std::printf("correlation (FTQ vs trace): %.4f\n", cmp.correlation);
  std::printf("mean |FTQ - trace|:         %s\n",
              fmt_duration(static_cast<DurNs>(cmp.mean_abs_diff_ns)).c_str());
  std::printf("FTQ overestimated quanta:   %zu\n", cmp.overestimated_quanta);
  std::printf("FTQ underestimated quanta:  %zu  (beyond one-op tolerance)\n\n",
              cmp.underestimated_quanta);

  bench::check(cmp.correlation > 0.95, "correlation > 0.95: the two methods agree");
  bench::check(cmp.underestimated_quanta == 0,
               "FTQ never under-reports beyond its op granularity");
  bench::check(cmp.overestimated_quanta > 0,
               "FTQ slightly overestimates (discretization), as the paper observes");

  // Fig 1a/1b side by side, zoomed to the first 60 ms (the paper's Fig 1c/1d).
  std::printf("\nFig 1c/1d zoom — per-quantum noise (first 60 quanta):\n");
  std::printf("%-8s %14s %14s   %s\n", "t(ms)", "FTQ (us)", "trace (us)",
              "trace decomposition");
  for (std::size_t q = 0; q < std::min<std::size_t>(60, cmp.ftq_noise_ns.size()); ++q) {
    if (cmp.ftq_noise_ns[q] == 0 && cmp.trace_noise_ns[q] == 0) continue;
    std::string decomposition;
    for (std::size_t i = 0; i < chart.quanta[q].components.size(); ++i) {
      if (i != 0) decomposition += " + ";
      decomposition +=
          std::string(noise::activity_name(chart.quanta[q].components[i].kind)) + "(" +
          std::to_string(chart.quanta[q].components[i].duration) + ")";
    }
    std::printf("%-8.1f %14.2f %14.2f   %s\n",
                static_cast<double>(chart.quanta[q].start) / 1e6,
                cmp.ftq_noise_ns[q] / 1e3, cmp.trace_noise_ns[q] / 1e3,
                decomposition.c_str());
  }

  // Matlab-style data dump for external plotting.
  std::string csv = "quantum_start_ns,ftq_noise_ns,trace_noise_ns\n";
  for (std::size_t q = 0; q < cmp.ftq_noise_ns.size(); ++q)
    csv += std::to_string(chart.quanta[q].start) + "," +
           std::to_string(cmp.ftq_noise_ns[q]) + "," +
           std::to_string(cmp.trace_noise_ns[q]) + "\n";
  bench::write_output("fig01_ftq_vs_trace.csv", csv);
  bench::write_output("fig01_chart.csv", exporter::chart_csv(chart));
  return 0;
}
