// Figure 9 — Noise disambiguation case 2: OS noise composition.
//
// FTQ reports one spike per quantum; when a page fault lands right before a
// periodic timer interrupt inside the same quantum, FTQ's spike looks like a
// different (larger) event and seems to contradict the tick's periodicity.
// LTTNG-NOISE separates the two interruptions.
#include <cstdio>

#include "bench_common.hpp"
#include "noise/disambiguate.hpp"
#include "noise/ftq_compare.hpp"
#include "workloads/ftq.hpp"

int main() {
  using namespace osn;
  bench::print_header("Figure 9",
                      "disambiguating composite FTQ spikes (page fault + tick)");

  workloads::FtqParams params;
  params.n_quanta = 4000;
  // Faults every 5 quanta: plenty of chances to land in a tick quantum.
  params.fault_period_quanta = 5;
  workloads::FtqWorkload ftq(params);
  std::fprintf(stderr, "[run]   FTQ for %zu quanta...\n", params.n_quanta);
  const workloads::RunResult run = workloads::run_workload(ftq, bench::bench_seed());

  noise::NoiseAnalysis analysis(run.trace);
  const noise::SyntheticChart chart =
      noise::build_chart(analysis, ftq.ftq_pid(), ftq.samples().front().start,
                         params.quantum, ftq.samples().size());
  const auto interruptions = noise::group_interruptions(analysis, ftq.ftq_pid());
  const auto composites = noise::find_composite_quanta(chart, interruptions);

  std::printf("interruptions observed:  %zu\n", interruptions.size());
  std::printf("composite quanta found:  %zu (quanta whose FTQ spike merges two or "
              "more unrelated events)\n\n",
              composites.size());

  std::size_t shown = 0;
  for (const auto& cq : composites) {
    if (++shown > 5) break;
    const std::uint64_t ftq_ops = ftq.samples()[cq.quantum_index].ops;
    const std::uint64_t missing = ftq.nmax() - ftq_ops;
    std::printf("quantum @ %.1f ms — FTQ view: ONE spike of %llu missing ops (%.2f us)\n",
                static_cast<double>(cq.start) / 1e6,
                static_cast<unsigned long long>(missing),
                static_cast<double>(missing * params.op_time) / 1e3);
    std::printf("  trace view: %zu separate interruptions:\n", cq.interruptions.size());
    for (const auto& in : cq.interruptions) {
      std::printf("    t=%.3f ms  %s\n", static_cast<double>(in.start) / 1e6,
                  noise::describe_interruption(in).c_str());
    }
    std::printf("\n");
  }

  bench::check(!composites.empty(),
               "composite quanta exist and are separable (Fig 9b vs 9a)");
  // Every composite must contain both a periodic component and something else
  // in at least one case — the paper's page-fault-before-tick story.
  bool story_found = false;
  for (const auto& cq : composites) {
    bool tick = false, fault = false;
    for (const auto& in : cq.interruptions)
      for (const auto& part : in.parts) {
        if (part.kind == noise::ActivityKind::kTimerIrq) tick = true;
        if (part.kind == noise::ActivityKind::kPageFault) fault = true;
      }
    if (tick && fault) story_found = true;
  }
  bench::check(story_found,
               "a page fault and an unrelated timer interrupt share a quantum");
  return 0;
}
