// Figure 5 — Page Fault Trace: where faults fall in time.
//
// "We filtered out all the events but the page faults": AMG faults are
// spread through the whole execution with accumulation points; LAMMPS faults
// cluster at initialization and the end.
#include <array>
#include <cstdio>

#include "bench_common.hpp"
#include "export/ascii.hpp"

namespace {

std::array<std::size_t, 10> fault_deciles(const osn::noise::NoiseAnalysis& analysis,
                                          osn::TimeNs duration) {
  std::array<std::size_t, 10> deciles{};
  for (const auto& iv : analysis.intervals().kernel) {
    if (iv.kind != osn::noise::ActivityKind::kPageFault) continue;
    const auto d = std::min<std::size_t>(
        9, static_cast<std::size_t>(10 * iv.start / std::max<osn::TimeNs>(duration, 1)));
    ++deciles[d];
  }
  return deciles;
}

void print_deciles(const char* name, const std::array<std::size_t, 10>& d) {
  std::printf("%-8s faults per decile of the run: ", name);
  for (const auto c : d) std::printf("%7zu", c);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace osn;
  bench::print_header("Figure 5", "page fault temporal traces (AMG vs LAMMPS)");

  const trace::TraceModel amg_model = bench::sequoia_trace(workloads::SequoiaApp::kAmg);
  noise::NoiseAnalysis amg(amg_model);
  std::printf("Fig 5a — AMG, page faults only:\n%s\n",
              exporter::render_timeline(amg, 0, amg_model.duration(), 110,
                                        noise::NoiseCategory::kPageFault)
                  .c_str());

  const trace::TraceModel lmp_model =
      bench::sequoia_trace(workloads::SequoiaApp::kLammps);
  noise::NoiseAnalysis lammps(lmp_model);
  std::printf("Fig 5b — LAMMPS, page faults only:\n%s\n",
              exporter::render_timeline(lammps, 0, lmp_model.duration(), 110,
                                        noise::NoiseCategory::kPageFault)
                  .c_str());

  const auto amg_d = fault_deciles(amg, amg_model.duration());
  const auto lmp_d = fault_deciles(lammps, lmp_model.duration());
  print_deciles("AMG", amg_d);
  print_deciles("LAMMPS", lmp_d);
  std::printf("\n");

  // Shape criteria: every AMG decile is populated; LAMMPS edges dominate.
  std::size_t amg_min = amg_d[0];
  for (const auto c : amg_d) amg_min = std::min(amg_min, c);
  bench::check(amg_min > 50, "AMG faults throughout the whole execution (Fig 5a)");

  std::size_t lmp_middle = 0, lmp_edges = lmp_d[0] + lmp_d[1] + lmp_d[8] + lmp_d[9];
  for (std::size_t i = 2; i <= 7; ++i) lmp_middle += lmp_d[i];
  bench::check(lmp_edges > 2 * lmp_middle,
               "LAMMPS faults mainly at the beginning and the end (Fig 5b)");
  return 0;
}
