// Figure 10 — Noise disambiguation case 1: qualitatively similar activities.
//
// In the AMG run, find pairs of OS interruptions with nearly identical total
// durations but different composition — e.g. a ~2.9 us page fault vs a
// ~2.9 us timer interrupt + run_timer_softirq. Indirect measurement cannot
// tell them apart; the per-event trace can.
#include <cstdio>

#include "bench_common.hpp"
#include "noise/disambiguate.hpp"

int main() {
  using namespace osn;
  bench::print_header("Figure 10",
                      "disambiguating look-alike interruptions in AMG");

  const trace::TraceModel model = bench::sequoia_trace(workloads::SequoiaApp::kAmg);
  noise::NoiseAnalysis analysis(model);

  // Use the first rank's interruption stream, as the paper's chart does.
  const Pid rank = model.app_pids().front();
  const auto interruptions = noise::group_interruptions(analysis, rank);
  const auto pairs = noise::find_lookalikes(interruptions, 0.01);

  std::printf("interruptions for %s: %zu\n", model.task_name(rank).c_str(),
              interruptions.size());
  std::printf("look-alike pairs (totals within 1%%, different composition): %zu\n\n",
              pairs.size());

  std::size_t shown = 0;
  bool paper_case = false;
  for (const auto& p : pairs) {
    if (++shown <= 6) {
      std::printf("pair (totals %s vs %s, delta %.2f%%):\n",
                  fmt_duration(p.a.total).c_str(), fmt_duration(p.b.total).c_str(),
                  p.relative_difference * 100.0);
      std::printf("  A @ %.3f ms: %s\n", static_cast<double>(p.a.start) / 1e6,
                  noise::describe_interruption(p.a).c_str());
      std::printf("  B @ %.3f ms: %s\n\n", static_cast<double>(p.b.start) / 1e6,
                  noise::describe_interruption(p.b).c_str());
    }
    // The paper's exact case: a lone page fault vs timer irq (+ softirq).
    const auto sig_a = noise::composition_signature(p.a);
    const auto sig_b = noise::composition_signature(p.b);
    auto is_fault_only = [](const std::vector<noise::ActivityKind>& s) {
      return s.size() == 1 && s[0] == noise::ActivityKind::kPageFault;
    };
    auto has_tick = [](const std::vector<noise::ActivityKind>& s) {
      for (const auto k : s)
        if (k == noise::ActivityKind::kTimerIrq) return true;
      return false;
    };
    if ((is_fault_only(sig_a) && has_tick(sig_b)) ||
        (is_fault_only(sig_b) && has_tick(sig_a)))
      paper_case = true;
  }

  bench::check(!pairs.empty(), "look-alike interruptions exist (Fig 10)");
  bench::check(paper_case,
               "the paper's exact case found: page fault vs timer interruption "
               "of matching duration");
  return 0;
}
