// Ablation — tick frequency. §IV-E: "In our test machine we set the
// frequency of this periodic high resolution timer to the lowest possible
// ... so to minimize the effect of the periodic timer interrupt." This
// bench quantifies what that choice buys: the same SPHOT run (the most
// periodic-noise-sensitive application) at 100 Hz vs 250 Hz vs 1000 Hz.
#include <cstdio>

#include "bench_common.hpp"
#include "export/ascii.hpp"

int main() {
  using namespace osn;
  bench::print_header("Ablation", "periodic tick frequency (100 Hz vs 1 kHz)");

  TextTable table({"tick", "timer irq freq", "periodic noise/rank", "total noise/rank",
                   "periodic share"});
  std::vector<double> periodic_per_rank;
  for (const DurNs tick : {10 * kNsPerMs, 4 * kNsPerMs, 1 * kNsPerMs}) {
    workloads::SequoiaWorkload wl(workloads::SequoiaApp::kSphot, sec(6));
    wl.set_tick_period(tick);
    std::fprintf(stderr, "[run]   SPHOT at %s tick...\n", fmt_duration(tick).c_str());
    const workloads::RunResult run = workloads::run_workload(wl, bench::bench_seed());
    noise::NoiseAnalysis analysis(run.trace);

    const auto bd = analysis.category_breakdown_all();
    DurNs total = 0;
    for (std::size_t c = 0; c < bd.size(); ++c) {
      if (c == static_cast<std::size_t>(noise::NoiseCategory::kRequestedService))
        continue;
      total += bd[c];
    }
    const DurNs periodic =
        bd[static_cast<std::size_t>(noise::NoiseCategory::kPeriodic)];
    const double ranks = static_cast<double>(run.trace.app_pids().size());
    const double dur_sec =
        static_cast<double>(run.trace.duration()) / static_cast<double>(kNsPerSec);
    periodic_per_rank.push_back(static_cast<double>(periodic) / ranks / dur_sec);

    const auto irq = analysis.activity_stats(noise::ActivityKind::kTimerIrq);
    table.add_row({fmt_duration(tick), fmt_fixed(irq.freq_ev_per_sec, 0) + " ev/s",
                   fmt_duration(static_cast<DurNs>(periodic_per_rank.back())) + "/s",
                   fmt_duration(static_cast<DurNs>(
                       static_cast<double>(total) / ranks / dur_sec)) +
                       "/s",
                   fmt_percent(static_cast<double>(periodic) /
                               static_cast<double>(std::max<DurNs>(total, 1)))});
  }
  std::printf("%s\n", table.render().c_str());

  bench::check(periodic_per_rank[2] > 5.0 * periodic_per_rank[0],
               "1 kHz tick multiplies periodic noise ~10x over 100 Hz — the paper's "
               "lowest-frequency setting is justified");
  std::printf("\n(The paper's CNK/lightweight-kernel comparison point: removing the\n"
              "periodic tick entirely is why LWKs show near-zero periodic noise.)\n");
  return 0;
}
