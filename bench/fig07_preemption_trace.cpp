// Figure 7 — Process preemption experienced by LAMMPS.
//
// "We filtered out all events but process preemptions (green) ... it is
// clear that LAMMPS suffers many frequent preemptions", caused by rpciod
// handling its NFS traffic.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "export/ascii.hpp"

int main() {
  using namespace osn;
  bench::print_header("Figure 7", "process preemptions experienced by LAMMPS");

  const trace::TraceModel model = bench::sequoia_trace(workloads::SequoiaApp::kLammps);
  noise::NoiseAnalysis analysis(model);

  std::printf("LAMMPS full run, preemptions only ('X'):\n%s\n",
              exporter::render_timeline(analysis, 0, model.duration(), 110,
                                        noise::NoiseCategory::kPreemption)
                  .c_str());

  // Who preempts, how often, for how long.
  std::map<std::string, std::pair<std::uint64_t, DurNs>> by_preemptor;
  std::size_t count = 0;
  DurNs total = 0;
  for (const auto& iv : analysis.noise_intervals()) {
    if (iv.kind != noise::ActivityKind::kPreemption) continue;
    auto& [c, t] = by_preemptor[model.task_name(static_cast<Pid>(iv.detail))];
    ++c;
    t += iv.self;
    ++count;
    total += iv.self;
  }
  const double per_rank_per_sec =
      static_cast<double>(count) /
      (static_cast<double>(model.duration()) / static_cast<double>(kNsPerSec)) /
      static_cast<double>(model.app_pids().size());
  std::printf("preemptions: %zu total (%.1f per rank per second), %s of rank time\n",
              count, per_rank_per_sec, fmt_duration(total).c_str());
  std::printf("by preempting task:\n");
  DurNs rpciod_time = 0;
  for (const auto& [name, ct] : by_preemptor) {
    std::printf("  %-12s %6llu events  %10s total  (avg %s)\n", name.c_str(),
                static_cast<unsigned long long>(ct.first),
                fmt_duration(ct.second).c_str(),
                fmt_duration(ct.second / std::max<std::uint64_t>(1, ct.first)).c_str());
    if (name == "rpciod") rpciod_time = ct.second;
  }
  std::printf("\n");

  bench::check(per_rank_per_sec > 1.0, "LAMMPS suffers frequent preemptions (Fig 7)");
  bench::check(rpciod_time * 2 > total,
               "rpciod causes most preemption time (\"the applications were "
               "interrupted particularly by rpciod\")");
  const auto bd = analysis.category_breakdown_all();
  DurNs all = 0;
  for (std::size_t c = 0; c < bd.size(); ++c) {
    if (c == static_cast<std::size_t>(noise::NoiseCategory::kRequestedService)) continue;
    all += bd[c];
  }
  const double preempt_share =
      static_cast<double>(bd[static_cast<std::size_t>(noise::NoiseCategory::kPreemption)]) /
      static_cast<double>(std::max<DurNs>(all, 1));
  bench::check(preempt_share > 0.6,
               "preemption dominates LAMMPS noise (paper: 80.2%; measured " +
                   fmt_percent(preempt_share) + ")");
  return 0;
}
