// Extension — noise-to-scale extrapolation (the paper's stated future work:
// "quantify how our findings affect the scalability of those applications on
// large machines with hundreds of thousands of cores").
//
// For each application, resample the measured per-event noise stream into a
// bulk-synchronous model and estimate the expected slowdown as a function of
// rank count (E[max over ranks of per-window noise] / granularity). The
// qualitative predictions this regenerates:
//   * fine-grained (1 ms) applications suffer far more than coarse (100 ms);
//   * applications with heavy-tailed noise (AMG's 69 ms faults, LAMMPS's
//     long rpciod preemptions) degrade fastest — rare events become
//     per-iteration events at scale (Petrini et al.'s resonance).
#include <cstdio>

#include "bench_common.hpp"
#include "noise/scalability.hpp"

int main() {
  using namespace osn;
  bench::print_header("Extension", "noise extrapolation to scale (paper §VI future work)");

  const std::vector<std::uint64_t> scales = {1, 8, 64, 512, 4096, 32768};
  std::string csv = "app,granularity_ms,ranks,slowdown,efficiency\n";

  for (std::size_t i = 0; i < workloads::kSequoiaAppCount; ++i) {
    const auto app = static_cast<workloads::SequoiaApp>(i);
    const trace::TraceModel model = bench::sequoia_trace(app);
    noise::NoiseAnalysis analysis(model);
    const noise::NoiseProfile profile = noise::NoiseProfile::from_analysis(analysis);

    std::printf("%s — %.0f noise events/s/rank, mean %s, %.3f%% of rank time\n",
                workloads::app_name(app).c_str(), profile.events_per_sec,
                fmt_duration(static_cast<DurNs>(profile.mean_duration_ns)).c_str(),
                100.0 * profile.noise_fraction);

    for (const DurNs granularity : {1 * kNsPerMs, 100 * kNsPerMs}) {
      noise::ScalabilityParams params;
      params.granularity = granularity;
      params.iterations = granularity >= 100 * kNsPerMs ? 60u : 200u;
      const auto points = noise::extrapolate_scalability(profile, scales, params);
      std::printf("  granularity %-8s efficiency:", fmt_duration(granularity).c_str());
      for (const auto& p : points) {
        std::printf("  %llu:%0.3f", static_cast<unsigned long long>(p.ranks),
                    p.efficiency);
        csv += workloads::app_name(app) + "," +
               fmt_fixed(static_cast<double>(granularity) / 1e6, 0) + "," +
               std::to_string(p.ranks) + "," + fmt_fixed(p.slowdown, 4) + "," +
               fmt_fixed(p.efficiency, 4) + "\n";
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Shape checks on one representative app (AMG, heavy-tailed faults).
  const trace::TraceModel amg_model = bench::sequoia_trace(workloads::SequoiaApp::kAmg);
  noise::NoiseAnalysis amg(amg_model);
  const auto profile = noise::NoiseProfile::from_analysis(amg);
  noise::ScalabilityParams fine, coarse;
  fine.granularity = 1 * kNsPerMs;
  fine.iterations = 200;
  coarse.granularity = 100 * kNsPerMs;
  coarse.iterations = 60;
  const auto fine_pts = noise::extrapolate_scalability(profile, {1, 32768}, fine);
  const auto coarse_pts = noise::extrapolate_scalability(profile, {1, 32768}, coarse);

  bench::check(fine_pts[1].slowdown > fine_pts[0].slowdown * 1.5,
               "slowdown amplifies with rank count (order statistics of noise)");
  const double fine_loss = fine_pts[1].slowdown - 1.0;
  const double coarse_loss = coarse_pts[1].slowdown - 1.0;
  bench::check(fine_loss > 2.0 * coarse_loss,
               "fine-grained applications suffer disproportionately "
               "(high-frequency noise resonance)");
  bench::write_output("ext_scalability.csv", csv);
  return 0;
}
