// Shared plumbing for the per-figure/per-table bench binaries.
//
// Every bench regenerates one artifact of the paper's evaluation. Simulated
// runs are cached on disk as OSNT traces (bench_cache/) so the six table
// benches share the same five application runs; delete the directory to
// force fresh runs. OSN_BENCH_SECONDS overrides the simulated duration
// (default 12 s per application), OSN_BENCH_SEED the seed.
#pragma once

#include <cstdio>
#include <string>

#include "common/format.hpp"
#include "common/table.hpp"
#include "noise/analysis.hpp"
#include "trace/trace_io.hpp"
#include "workloads/calibration.hpp"
#include "workloads/sequoia.hpp"
#include "workloads/workload.hpp"

namespace osn::bench {

std::uint64_t bench_seconds();
std::uint64_t bench_seed();

/// Runs (or loads from cache) one Sequoia application.
trace::TraceModel sequoia_trace(workloads::SequoiaApp app);

/// Adds a paper/measured row pair to a table.
void add_compare_rows(TextTable& table, const std::string& label,
                      const workloads::PaperEventRow& paper,
                      const noise::EventStats& measured);

/// Prints the standard bench header.
void print_header(const std::string& artifact, const std::string& description);

/// Prints a PASS/DEVIATION line for a shape criterion.
void check(bool ok, const std::string& what);

/// Writes `content` under bench_out/<name>, creating the directory.
void write_output(const std::string& name, const std::string& content);

}  // namespace osn::bench
