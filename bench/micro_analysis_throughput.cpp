// Sharded-analysis throughput: serial (--jobs 1) vs parallel (--jobs 8)
// end-to-end offline analysis of one generated 8-CPU trace.
//
// "End-to-end" is the work `osn-analyze stats` + `breakdown` do after the
// trace is loaded: interval building (per-CPU shards), noise classification,
// and the per-activity statistics reduce. The determinism contract is
// checked alongside the timing: both modes must render byte-identical stats
// tables and Paraver exports. The >= 2x speedup criterion only applies when
// the host actually has cores to shard onto (hardware_concurrency >= 4);
// single-core CI still verifies identity and reports the measured ratio.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "export/paraver.hpp"

namespace {

using namespace osn;

std::string stats_table(const noise::NoiseAnalysis& analysis) {
  TextTable table({"activity", "freq(ev/sec)", "avg(nsec)", "max(nsec)", "min(nsec)"});
  for (int k = 0; k < static_cast<int>(noise::ActivityKind::kMaxKind); ++k) {
    const auto kind = static_cast<noise::ActivityKind>(k);
    const noise::EventStats s = analysis.activity_stats(kind);
    if (s.count == 0) continue;
    table.add_row({std::string(noise::activity_name(kind)), fmt_fixed(s.freq_ev_per_sec, 1),
                   with_commas(static_cast<std::uint64_t>(s.avg_ns)),
                   with_commas(s.max_ns), with_commas(s.min_ns)});
  }
  return table.render();
}

struct RunOutput {
  std::string table;
  std::array<DurNs, static_cast<std::size_t>(noise::NoiseCategory::kMaxCategory)> breakdown{};
  std::size_t noise_count = 0;
};

/// One full analysis pass; returns wall time in seconds and the outputs.
double run_once(const trace::TraceModel& model, std::size_t jobs, RunOutput& out) {
  const auto t0 = std::chrono::steady_clock::now();
  noise::AnalysisOptions opts;
  opts.jobs = jobs;
  noise::NoiseAnalysis analysis(model, opts);
  out.table = stats_table(analysis);
  out.breakdown = analysis.category_breakdown_all();
  out.noise_count = analysis.noise_intervals().size();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  bench::print_header("micro_analysis_throughput",
                      "serial vs sharded offline analysis (--jobs 1 vs --jobs 8)");

  const trace::TraceModel model = bench::sequoia_trace(workloads::SequoiaApp::kAmg);
  std::printf("trace: %u CPUs, %zu events, %s\n\n",
              static_cast<unsigned>(model.cpu_count()), model.total_events(),
              fmt_duration(model.duration()).c_str());

  constexpr std::size_t kParallelJobs = 8;
  constexpr int kReps = 3;
  double serial_best = 1e100, parallel_best = 1e100;
  RunOutput serial_out, parallel_out;
  for (int rep = 0; rep < kReps; ++rep) {
    serial_best = std::min(serial_best, run_once(model, 1, serial_out));
    parallel_best = std::min(parallel_best, run_once(model, kParallelJobs, parallel_out));
  }

  const double events_per_sec =
      static_cast<double>(model.total_events()) / parallel_best;
  const double speedup = serial_best / parallel_best;
  TextTable table({"mode", "best of 3", "events/sec"});
  table.add_row({"--jobs 1 (serial)", fmt_fixed(serial_best * 1e3, 2) + " ms",
                 fmt_fixed(static_cast<double>(model.total_events()) / serial_best / 1e6, 1) +
                     " M"});
  table.add_row({"--jobs 8 (sharded)", fmt_fixed(parallel_best * 1e3, 2) + " ms",
                 fmt_fixed(events_per_sec / 1e6, 1) + " M"});
  std::printf("%s\nspeedup: %.2fx\n\n", table.render().c_str(), speedup);

  // Determinism contract: byte-identical outputs across modes.
  bench::check(serial_out.table == parallel_out.table,
               "stats tables byte-identical across --jobs settings");
  bench::check(serial_out.breakdown == parallel_out.breakdown &&
                   serial_out.noise_count == parallel_out.noise_count,
               "noise breakdown and interval count identical across --jobs settings");
  {
    noise::AnalysisOptions serial_opts, parallel_opts;
    serial_opts.jobs = 1;
    parallel_opts.jobs = kParallelJobs;
    noise::NoiseAnalysis a(model, serial_opts), b(model, parallel_opts);
    const auto pa = exporter::export_paraver(a);
    const auto pb = exporter::export_paraver(b);
    bench::check(pa.prv == pb.prv && pa.pcf == pb.pcf && pa.row == pb.row,
                 "Paraver .prv/.pcf/.row byte-identical across --jobs settings");
  }

  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 4) {
    bench::check(speedup >= 2.0, "sharded analysis >= 2x serial on this host");
  } else {
    std::printf("note: host has %u hardware thread(s); the >= 2x criterion needs >= 4\n"
                "      (shards serialize on one core — identity checks above still bind).\n",
                hw);
  }
  return 0;
}
