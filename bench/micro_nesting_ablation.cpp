// Ablation — why nested-event resolution matters (§III-A: "Handling nested
// events is particularly important for obtaining correct statistics").
//
// Re-analyzes each application's trace twice: with self-time resolution
// (correct) and with naive inclusive times (what an instrumentation without
// a nesting stack would report). The delta is pure double-counting.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace osn;
  bench::print_header("Ablation", "nested-event resolution vs naive inclusive times");

  TextTable table({"app", "resolved noise", "naive noise", "double-counted",
                   "inflation"});
  bool always_inflates = true;

  for (std::size_t i = 0; i < workloads::kSequoiaAppCount; ++i) {
    const auto app = static_cast<workloads::SequoiaApp>(i);
    const trace::TraceModel model = bench::sequoia_trace(app);

    noise::NoiseAnalysis resolved(model);
    noise::AnalysisOptions naive_opts;
    naive_opts.resolve_nesting = false;
    noise::NoiseAnalysis naive(model, naive_opts);

    DurNs resolved_total = 0, naive_total = 0;
    for (Pid pid : model.app_pids()) {
      resolved_total += resolved.total_noise(pid);
      naive_total += naive.total_noise(pid);
    }
    const DurNs delta = naive_total - std::min(naive_total, resolved_total);
    const double inflation =
        resolved_total == 0 ? 0.0
                            : static_cast<double>(delta) /
                                  static_cast<double>(resolved_total);
    table.add_row({workloads::app_name(app), fmt_duration(resolved_total),
                   fmt_duration(naive_total), fmt_duration(delta),
                   fmt_percent(inflation, 2)});
    if (naive_total <= resolved_total) always_inflates = false;
  }
  std::printf("%s\n", table.render().c_str());
  bench::check(always_inflates,
               "naive accounting double-counts nested events in every application");
  std::printf(
      "\nNote: interruptions arriving inside other kernel activities (ticks during\n"
      "tasklets/faults) are counted twice without the nesting stack; the paper's\n"
      "statistics would be silently inflated by the amounts above.\n");
  return 0;
}
