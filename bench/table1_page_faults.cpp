// Table I — Page fault statistics per Sequoia application.
#include "table_common.hpp"

int main() {
  using namespace osn;
  bench::TableSpec spec;
  spec.artifact = "Table I";
  spec.description = "Page fault statistics";
  spec.kind = noise::ActivityKind::kPageFault;
  spec.row = [](const workloads::PaperAppData& d) -> const workloads::PaperEventRow& {
    return d.page_fault;
  };
  spec.freq_tolerance = 0.25;
  spec.avg_tolerance = 0.20;
  return bench::run_table(spec);
}
