// §IV-C — "the overhead introduced by the schedule function is negligible
// and constant, confirming the effectiveness of the new Completely Fair
// Scheduler": per-application schedule() statistics.
#include <cstdio>

#include "bench_common.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace osn;
  bench::print_header("§IV-C", "schedule() is negligible and constant");

  TextTable table({"app", "count", "avg(nsec)", "stddev(nsec)", "max(nsec)",
                   "share of total noise"});
  bool all_negligible = true, all_constant = true;

  for (std::size_t i = 0; i < workloads::kSequoiaAppCount; ++i) {
    const auto app = static_cast<workloads::SequoiaApp>(i);
    const trace::TraceModel model = bench::sequoia_trace(app);
    noise::NoiseAnalysis analysis(model);

    stats::StreamingSummary s;
    for (const auto& iv : analysis.intervals().kernel)
      if (iv.kind == noise::ActivityKind::kSchedule)
        s.add(static_cast<double>(iv.self));

    DurNs sched_noise = 0, total_noise = 0;
    for (const auto& iv : analysis.noise_intervals()) {
      if (categorize(iv.kind) == noise::NoiseCategory::kRequestedService) continue;
      total_noise += analysis.charged(iv);
      if (iv.kind == noise::ActivityKind::kSchedule)
        sched_noise += analysis.charged(iv);
    }
    const double share = total_noise == 0
                             ? 0.0
                             : static_cast<double>(sched_noise) /
                                   static_cast<double>(total_noise);
    table.add_row({workloads::app_name(app), std::to_string(s.count()),
                   fmt_fixed(s.mean(), 0), fmt_fixed(s.stddev(), 0),
                   with_commas(static_cast<std::uint64_t>(s.max())),
                   fmt_percent(share, 2)});
    if (s.mean() > 1'000) all_negligible = false;              // sub-microsecond
    if (s.stddev() > 0.5 * s.mean()) all_constant = false;     // tight spread
  }
  std::printf("%s\n", table.render().c_str());
  bench::check(all_negligible, "schedule() average is sub-microsecond everywhere");
  bench::check(all_constant, "schedule() duration is near-constant (low spread)");
  return 0;
}
