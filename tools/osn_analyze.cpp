// osn-analyze — the LTTNG-NOISE offline analysis tool.
//
// The paper's workflow is: instrument statically, trace, analyze offline.
// This command-line tool is the offline half, operating on compact OSNT
// trace files (written by the simulator, the benches, or `osn-analyze run`):
//
//   osn-analyze run <ftq|amg|irs|lammps|sphot|umt> [-o trace.osnt]
//                   [--seconds N] [--seed S]
//   osn-analyze info <trace.osnt>
//   osn-analyze stats <trace.osnt>
//   osn-analyze breakdown <trace.osnt> [--per-rank] [--no-runnable-filter]
//                   [--no-nesting]
//   osn-analyze chart <trace.osnt> [--task PID] [--quantum-us N]
//                   [--min-noise-us N] [--rows N]
//   osn-analyze timeline <trace.osnt> [--category P|T|S|X|I] [--from-ms A]
//                   [--to-ms B] [--width N]
//   osn-analyze interruptions <trace.osnt> [--task PID] [--top N]
//   osn-analyze lookalikes <trace.osnt> [--task PID] [--tolerance PCT]
//   osn-analyze export <trace.osnt> (--paraver BASE | --csv FILE)
//
// Filters ("developers concerned about specific areas can use our
// infrastructure to drill down into any particular area of interest by
// simply applying different filters", §III-A) are the --category/--task
// options.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "common/table.hpp"
#include "export/ascii.hpp"
#include "export/csv.hpp"
#include "export/json.hpp"
#include "export/paraver.hpp"
#include "monitor/rolling.hpp"
#include "noise/analysis.hpp"
#include "noise/chart.hpp"
#include "noise/disambiguate.hpp"
#include "noise/index_aggregate.hpp"
#include "noise/scalability.hpp"
#include "noise/streaming.hpp"
#include "query/engine.hpp"
#include "serve/client.hpp"
#include "trace/event_source.hpp"
#include "trace/osnt_reader.hpp"
#include "trace/trace_io.hpp"
#include "workloads/ftq.hpp"
#include "workloads/sequoia.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace osn;

// ---------------------------------------------------------------------------
// Tiny argument parser: positionals + --flag / --key value options.
// ---------------------------------------------------------------------------
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (!arg.empty() && arg[0] == '-') {
        const std::string key = arg.substr(arg.rfind("--", 0) == 0 ? 2 : 1);
        if (i + 1 < argc && argv[i + 1][0] != '-') {
          options_[key] = argv[++i];
        } else {
          options_[key] = "";
        }
      } else {
        positionals_.push_back(arg);
      }
    }
  }

  bool has(const std::string& key) const { return options_.contains(key); }
  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = options_.find(key);
    return it == options_.end() || it->second.empty() ? fallback : it->second;
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    auto it = options_.find(key);
    if (it == options_.end() || it->second.empty()) return fallback;
    return static_cast<std::uint64_t>(std::strtoull(it->second.c_str(), nullptr, 10));
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = options_.find(key);
    if (it == options_.end() || it->second.empty()) return fallback;
    return std::strtod(it->second.c_str(), nullptr);
  }
  const std::vector<std::string>& positionals() const { return positionals_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positionals_;
};

int usage() {
  std::fprintf(
      stderr,
      "osn-analyze — quantitative OS-noise analysis on OSNT traces\n\n"
      "  osn-analyze run <ftq|amg|irs|lammps|sphot|umt> [-o out.osnt]\n"
      "              [--seconds N] [--seed S] [--offline]\n"
      "              [--buf-capacity N] [--batch N]\n"
      "  osn-analyze info <trace.osnt>\n"
      "  osn-analyze verify <trace.osnt>\n"
      "  osn-analyze stats <trace.osnt>\n"
      "  osn-analyze breakdown <trace.osnt> [--per-rank] [--no-runnable-filter]\n"
      "              [--no-nesting]\n"
      "  osn-analyze chart <trace.osnt> [--task PID] [--quantum-us N]\n"
      "              [--min-noise-us N] [--rows N]\n"
      "  osn-analyze timeline <trace.osnt> [--category P|T|S|X|I] [--from-ms A]\n"
      "              [--to-ms B] [--width N]\n"
      "  osn-analyze interruptions <trace.osnt> [--task PID] [--top N]\n"
      "  osn-analyze lookalikes <trace.osnt> [--task PID] [--tolerance PCT]\n"
      "  osn-analyze summary <trace.osnt> [--window A:B] [--cpu N]\n"
      "  osn-analyze timeseries <trace.osnt> [--activity NAME] [--quantum-us N]\n"
      "              [--window A:B] [--cpu N]\n"
      "  osn-analyze topk <trace.osnt> [--k N] [--window A:B] [--cpu N]\n"
      "  osn-analyze export <trace.osnt> (--paraver BASE | --csv FILE |\n"
      "              --json FILE)\n"
      "  osn-analyze query <list|info|summary|chart|window|timeseries|topk|\n"
      "              refresh|alerts|monitor_status|metrics|ping> [trace]\n"
      "              --port N [--host H] [--window A:B]\n"
      "              [--task PID] [--quantum-us N] [--cpu N] [--activity NAME]\n"
      "              [--k N] [--deadline-ms N] [--stall-ms N]\n"
      "              [--wire json|binary]\n"
      "  osn-analyze monitor <status|alerts|refresh> --port N [--host H]\n"
      "              [--wire json|binary]\n"
      "  osn-analyze rolling <store-dir> [summary|timeseries|topk]\n"
      "              [--window A:B] [--cpu N] [--activity NAME] [--k N]\n"
      "              [--quantum-us N]\n"
      "  osn-analyze diff <a.osnt> <b.osnt>\n"
      "  osn-analyze scalability <trace.osnt> [--granularity-us N]\n"
      "              [--ranks N,N,...]\n\n"
      "Analysis commands accept --jobs N: worker threads for the sharded\n"
      "per-CPU pipeline and the chunk-parallel v3 decode (default: all\n"
      "hardware threads; --jobs 1 runs the serial reference path — both\n"
      "produce byte-identical output). They also accept --window A:B\n"
      "(milliseconds): analyze only that time slice — for chunk-indexed v3\n"
      "traces only the overlapping chunks are read from disk — and\n"
      "--io mmap|pread: decode straight out of a read-only mapping (default,\n"
      "falls back to pread when mmap fails) or force positioned reads.\n");
  return 2;
}

const std::string& trace_path(const Args& args) {
  if (args.positionals().empty()) {
    std::fprintf(stderr, "error: missing trace file\n");
    std::exit(usage());
  }
  return args.positionals()[0];
}

/// Worker pool shared by the v3 chunk decode and the sharded analysis
/// (nullptr when --jobs resolves to 1).
std::unique_ptr<ThreadPool> decode_pool(const Args& args) {
  const std::size_t jobs =
      ThreadPool::resolve_jobs(static_cast<std::size_t>(args.get_u64("jobs", 0)));
  return jobs > 1 ? std::make_unique<ThreadPool>(jobs) : nullptr;
}

/// Parses --window A:B (milliseconds, fractional allowed) into [t0, t1) ns
/// through the same conversion the serve protocol uses (query::ns_from_ms),
/// so a CLI window and a served window always mean the same nanosecond span.
bool parse_window(const Args& args, TimeNs& t0, TimeNs& t1) {
  if (!args.has("window")) return false;
  const std::string w = args.get("window");
  const std::size_t colon = w.find(':');
  std::optional<TimeNs> a, b;
  if (colon != std::string::npos) {
    a = query::ns_from_ms(std::strtod(w.substr(0, colon).c_str(), nullptr));
    b = query::ns_from_ms(std::strtod(w.substr(colon + 1).c_str(), nullptr));
  }
  if (colon == std::string::npos || !a.has_value() || !b.has_value() || *b <= *a) {
    std::fprintf(stderr, "error: --window expects A:B in milliseconds (B > A)\n");
    std::exit(2);
  }
  t0 = *a;
  t1 = *b;
  return true;
}

/// --quantum-us with the wrap guard every quantum consumer needs: a product
/// that overflows DurNs would otherwise fold to a quantum of 0.
DurNs quantum_from_args(const Args& args) {
  const std::uint64_t us = args.get_u64("quantum-us", 1000);
  if (us == 0 || us > kTimeInfinity / kNsPerUs) {
    std::fprintf(stderr, "error: --quantum-us out of range\n");
    std::exit(2);
  }
  return us * kNsPerUs;
}

/// --io mmap|pread: I/O strategy for file-backed readers (default: mmap with
/// silent pread fallback).
trace::OsntReader::IoMode io_mode(const Args& args) {
  const std::string mode = args.get("io", "mmap");
  if (mode == "pread") return trace::OsntReader::IoMode::kPread;
  if (mode != "mmap") {
    std::fprintf(stderr, "error: --io expects mmap or pread\n");
    std::exit(2);
  }
  return trace::OsntReader::IoMode::kAuto;
}

trace::TraceModel load(const Args& args) {
  auto source = trace::open_trace_source(trace_path(args), io_mode(args));
  const auto pool = decode_pool(args);
  TimeNs t0 = 0, t1 = 0;
  if (parse_window(args, t0, t1)) return source->to_model_window(t0, t1, pool.get());
  return source->to_model(pool.get());
}

noise::AnalysisOptions analysis_options(const Args& args) {
  noise::AnalysisOptions opts;
  opts.runnable_filter = !args.has("no-runnable-filter");
  opts.resolve_nesting = !args.has("no-nesting");
  // 0 = auto (hardware_concurrency); --jobs 1 keeps the serial path for
  // bisection. Results are byte-identical either way.
  opts.jobs = static_cast<std::size_t>(args.get_u64("jobs", 0));
  return opts;
}

Pid pick_task(const Args& args, const trace::TraceModel& model) {
  const auto apps = model.app_pids();
  if (apps.empty()) {
    std::fprintf(stderr, "error: trace has no application tasks\n");
    std::exit(1);
  }
  const auto pid = static_cast<Pid>(args.get_u64("task", apps.front()));
  if (!model.is_app(pid)) {
    std::fprintf(stderr, "error: pid %u is not an application task\n", pid);
    std::exit(1);
  }
  return pid;
}

/// The aggregate-independent plan pieces every planner subcommand shares:
/// analysis options, the --window predicate, the --cpu predicate.
query::Plan base_plan(const Args& args) {
  query::Plan plan;
  plan.options = analysis_options(args);
  TimeNs t0 = 0, t1 = 0;
  if (parse_window(args, t0, t1)) {
    plan.t0 = t0;
    plan.t1 = t1;
  }
  if (args.has("cpu")) {
    const std::uint64_t cpu = args.get_u64("cpu", 0);
    if (cpu > 0xFFFF) {
      std::fprintf(stderr, "error: --cpu out of range\n");
      std::exit(2);
    }
    plan.cpu = static_cast<CpuId>(cpu);
  }
  return plan;
}

/// Runs one plan through the shared engine (the same executor osn-served
/// uses) and returns the rendered JSON document. The empty trace id keeps
/// the single-shot CLI out of the cache layer entirely.
std::string run_plan(const Args& args, const query::Plan& plan) {
  trace::OsntReader reader(trace_path(args), io_mode(args));
  const auto pool = decode_pool(args);
  query::Engine engine;
  return engine.run(reader, /*trace_id=*/"", plan, pool.get());
}

/// Print-to-stdout wrapper: the document bytes are the exporter's bytes,
/// identical to what the serve path transports.
int print_plan(const Args& args, const query::Plan& plan) {
  try {
    const std::string doc = run_plan(args, plan);
    std::fwrite(doc.data(), 1, doc.size(), stdout);
  } catch (const query::PlanError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

std::optional<noise::NoiseCategory> parse_category(const std::string& s) {
  if (s.empty()) return std::nullopt;
  switch (s[0]) {
    case 'T': return noise::NoiseCategory::kPeriodic;
    case 'P': return noise::NoiseCategory::kPageFault;
    case 'S': return noise::NoiseCategory::kScheduling;
    case 'X': return noise::NoiseCategory::kPreemption;
    case 'I': return noise::NoiseCategory::kIo;
    default: return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

std::size_t ceil_pow2(std::uint64_t v) {
  std::size_t p = 2;
  while (p < v) p <<= 1;
  return p;
}

int cmd_run(const Args& args) {
  if (args.positionals().empty()) return usage();
  const std::string which = args.positionals()[0];
  const std::uint64_t seconds = args.get_u64("seconds", 3);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const std::string out = args.get("o", which + ".osnt");

  std::unique_ptr<workloads::Workload> workload;
  if (which == "ftq") {
    workloads::FtqParams p;
    p.n_quanta = static_cast<std::size_t>(seconds * 1000);
    workload = std::make_unique<workloads::FtqWorkload>(p);
  } else {
    const std::map<std::string, workloads::SequoiaApp> apps = {
        {"amg", workloads::SequoiaApp::kAmg},     {"irs", workloads::SequoiaApp::kIrs},
        {"lammps", workloads::SequoiaApp::kLammps}, {"sphot", workloads::SequoiaApp::kSphot},
        {"umt", workloads::SequoiaApp::kUmt}};
    auto it = apps.find(which);
    if (it == apps.end()) return usage();
    workload = std::make_unique<workloads::SequoiaWorkload>(it->second, sec(seconds));
  }

  std::fprintf(stderr, "simulating %s for %llus (seed %llu, %s drain)...\n", which.c_str(),
               static_cast<unsigned long long>(seconds),
               static_cast<unsigned long long>(seed),
               args.has("offline") ? "offline" : "live");

  if (args.has("offline")) {
    // Legacy path: collect the whole trace in memory, then serialize (v1).
    const workloads::RunResult run = workloads::run_workload(*workload, seed);
    if (!trace::write_trace_file(run.trace, out)) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %s: %zu events over %s\n", out.c_str(), run.trace.total_events(),
                fmt_duration(run.trace.duration()).c_str());
    return 0;
  }

  // Live pipeline: the consumer daemon drains the per-CPU channels while the
  // simulation runs, streaming merged records straight into the chunked OSNT
  // writer and the incremental analyzer — the full trace never sits in RAM.
  trace::OsntStreamWriter writer(out);
  if (!writer.ok()) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  // Pre-aggregate the per-chunk summaries while streaming, so later
  // `export --json` / served summary queries answer from the index without
  // decoding records. Costs a few accumulators per chunk in the footer.
  writer.set_aggregator(std::make_unique<noise::IndexAggregator>());
  noise::StreamingStats live_stats;
  workloads::LiveOptions lopts;
  lopts.per_cpu_capacity = ceil_pow2(args.get_u64("buf-capacity", 1u << 16));
  lopts.batch_size = std::max<std::uint64_t>(args.get_u64("batch", 256), 1);
  lopts.on_record = [&](const tracebuf::EventRecord& rec) {
    writer.append(rec);
    live_stats.consume(rec);
  };
  const workloads::LiveRunResult run = workloads::run_workload_live(*workload, seed, lopts);
  if (!writer.finish(run.meta, run.tasks)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }

  std::printf("wrote %s: %llu events over %s\n", out.c_str(),
              static_cast<unsigned long long>(writer.records_written()),
              fmt_duration(run.meta.end_ns - run.meta.start_ns).c_str());
  const trace::DrainStats& d = run.meta.drain;
  std::printf("live drain: %llu records in %llu batches (max %llu), %llu lost, "
              "%llu producer stalls\n",
              static_cast<unsigned long long>(d.records),
              static_cast<unsigned long long>(d.batches),
              static_cast<unsigned long long>(d.max_batch),
              static_cast<unsigned long long>(d.lost),
              static_cast<unsigned long long>(d.producer_stalls));

  // Incremental per-activity summary, computed without ever materializing
  // the trace (the same numbers `osn-analyze stats` derives offline).
  TextTable table({"activity", "freq(ev/sec)", "avg(nsec)", "max(nsec)", "min(nsec)"});
  for (int k = 0; k < static_cast<int>(noise::ActivityKind::kMaxKind); ++k) {
    const auto kind = static_cast<noise::ActivityKind>(k);
    const noise::EventStats s = live_stats.activity_stats(
        kind, run.meta.end_ns - run.meta.start_ns, run.meta.n_cpus);
    if (s.count == 0) continue;
    table.add_row({std::string(noise::activity_name(kind)),
                   fmt_fixed(s.freq_ev_per_sec, 1),
                   with_commas(static_cast<std::uint64_t>(s.avg_ns)),
                   with_commas(s.max_ns), with_commas(s.min_ns)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_info(const Args& args) {
  trace::FileEventSource source(trace_path(args), io_mode(args));
  const auto pool = decode_pool(args);
  const trace::TraceModel model = source.to_model(pool.get());
  const trace::OsntReader& reader = source.reader();
  std::printf("format:    OSNT v%u%s%s\n", reader.version(),
              reader.truncated() ? " (TRUNCATED — writer did not finish)" : "",
              reader.index_recovered() ? " (index recovered by scan)" : "");
  if (reader.version() == 3)
    std::printf("chunks:    %zu (%llu records indexed)\n", reader.chunks().size(),
                static_cast<unsigned long long>(reader.indexed_records()));
  std::printf("workload:  %s\n", model.meta().workload.c_str());
  std::printf("duration:  %s\n", fmt_duration(model.duration()).c_str());
  std::printf("cpus:      %u (tick %s)\n", model.cpu_count(),
              fmt_duration(model.meta().tick_period_ns).c_str());
  std::printf("events:    %zu\n", model.total_events());
  const std::string problem = model.validate();
  std::printf("validated: %s\n", problem.empty() ? "OK" : problem.c_str());
  const trace::DrainStats& d = model.meta().drain;
  if (d.records > 0 || d.lost > 0 || d.overwritten > 0) {
    std::printf("drain:     %llu records / %llu batches (max %llu)\n",
                static_cast<unsigned long long>(d.records),
                static_cast<unsigned long long>(d.batches),
                static_cast<unsigned long long>(d.max_batch));
    std::printf("           lost %llu, overwritten %llu, producer stalls %llu\n",
                static_cast<unsigned long long>(d.lost),
                static_cast<unsigned long long>(d.overwritten),
                static_cast<unsigned long long>(d.producer_stalls));
  }
  std::printf("tasks:\n");
  for (const auto& [pid, info] : model.tasks())
    std::printf("  %6u  %-16s %s\n", pid, info.name.c_str(),
                info.is_app ? "application" : (info.is_kernel_thread ? "kthread" : "user"));
  return 0;
}

int cmd_verify(const Args& args) {
  trace::OsntReader reader(trace_path(args), io_mode(args));
  const trace::VerifyReport report = reader.verify();
  std::printf("format:    OSNT v%u\n", report.version);
  if (report.version == 3)
    std::printf("chunks:    %zu\n", report.chunks);
  std::printf("records:   %llu\n", static_cast<unsigned long long>(report.records));
  if (report.truncated)
    std::printf("truncated: yes — writer did not finish; flushed chunks salvaged\n");
  if (report.index_recovered)
    std::printf("index:     damaged — rebuilt by forward scan\n");
  for (const trace::ChunkIssue& issue : report.issues) {
    if (issue.chunk == trace::TraceReadError::kNoChunk)
      std::printf("ISSUE @ byte %llu: %s\n",
                  static_cast<unsigned long long>(issue.offset), issue.problem.c_str());
    else
      std::printf("ISSUE chunk %lld @ byte %llu: %s\n",
                  static_cast<long long>(issue.chunk),
                  static_cast<unsigned long long>(issue.offset), issue.problem.c_str());
  }
  if (report.intact()) {
    std::printf("verify:    OK%s\n", report.clean() ? "" : " (incomplete but consistent)");
    return 0;
  }
  std::printf("verify:    %zu issue(s) found\n", report.issues.size());
  return 1;
}

int cmd_stats(const Args& args) {
  const trace::TraceModel model = load(args);
  noise::NoiseAnalysis analysis(model, analysis_options(args));
  TextTable table({"activity", "freq(ev/sec)", "avg(nsec)", "max(nsec)", "min(nsec)"});
  for (int k = 0; k < static_cast<int>(noise::ActivityKind::kMaxKind); ++k) {
    const auto kind = static_cast<noise::ActivityKind>(k);
    const noise::EventStats s = analysis.activity_stats(kind);
    if (s.count == 0) continue;
    table.add_row({std::string(noise::activity_name(kind)),
                   fmt_fixed(s.freq_ev_per_sec, 1),
                   with_commas(static_cast<std::uint64_t>(s.avg_ns)),
                   with_commas(s.max_ns), with_commas(s.min_ns)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_breakdown(const Args& args) {
  const trace::TraceModel model = load(args);
  noise::NoiseAnalysis analysis(model, analysis_options(args));
  if (args.has("per-rank")) {
    for (const Pid pid : model.app_pids())
      std::printf("%s", exporter::render_breakdown_row(model.task_name(pid),
                                                       analysis.category_breakdown(pid))
                            .c_str());
  } else {
    std::printf("%s", exporter::render_breakdown_row(model.meta().workload,
                                                     analysis.category_breakdown_all())
                          .c_str());
  }
  DurNs total = 0;
  for (const Pid pid : model.app_pids()) total += analysis.total_noise(pid);
  const double pct = 100.0 * static_cast<double>(total) /
                     (static_cast<double>(model.duration()) *
                      static_cast<double>(model.app_pids().size()));
  std::printf("total: %s across %zu ranks (%.3f%% of compute time)\n",
              fmt_duration(total).c_str(), model.app_pids().size(), pct);
  return 0;
}

int cmd_chart(const Args& args) {
  const DurNs quantum = quantum_from_args(args);
  if (args.has("json")) {
    query::Plan plan = base_plan(args);
    plan.aggregate = query::Aggregate::kChart;
    if (args.has("task")) plan.task = static_cast<Pid>(args.get_u64("task", 0));
    plan.quantum = quantum;
    return print_plan(args, plan);
  }
  const trace::TraceModel model = load(args);
  noise::NoiseAnalysis analysis(model, analysis_options(args));
  const Pid pid = pick_task(args, model);
  const noise::SyntheticChart chart = noise::build_chart(
      analysis, pid, 0, quantum, query::chart_buckets(model.duration(), quantum));
  const DurNs min_noise = args.get_u64("min-noise-us", 2) * kNsPerUs;
  std::printf("synthetic OS noise chart for %s (quantum %s):\n%s",
              model.task_name(pid).c_str(), fmt_duration(quantum).c_str(),
              exporter::render_spikes(chart, min_noise,
                                      static_cast<std::size_t>(args.get_u64("rows", 40)))
                  .c_str());
  return 0;
}

int cmd_timeline(const Args& args) {
  const trace::TraceModel model = load(args);
  noise::NoiseAnalysis analysis(model, analysis_options(args));
  const TimeNs from = args.get_u64("from-ms", 0) * kNsPerMs;
  const TimeNs to_default = model.duration() / kNsPerMs;
  const TimeNs to = args.get_u64("to-ms", to_default) * kNsPerMs;
  const auto width = static_cast<std::size_t>(args.get_u64("width", 100));
  std::printf("%s", exporter::render_timeline(analysis, from, std::max(to, from + 1),
                                              width, parse_category(args.get("category")))
                        .c_str());
  return 0;
}

int cmd_interruptions(const Args& args) {
  const trace::TraceModel model = load(args);
  noise::NoiseAnalysis analysis(model, analysis_options(args));
  const Pid pid = pick_task(args, model);
  auto interruptions = noise::group_interruptions(analysis, pid);
  std::sort(interruptions.begin(), interruptions.end(),
            [](const noise::Interruption& a, const noise::Interruption& b) {
              return a.total > b.total;
            });
  const auto top = static_cast<std::size_t>(args.get_u64("top", 20));
  std::printf("%zu interruptions for %s; top %zu by duration:\n",
              interruptions.size(), model.task_name(pid).c_str(),
              std::min(top, interruptions.size()));
  for (std::size_t i = 0; i < std::min(top, interruptions.size()); ++i) {
    const auto& in = interruptions[i];
    std::printf("  t=%10.3f ms  %10s  %s\n", static_cast<double>(in.start) / 1e6,
                fmt_duration(in.total).c_str(),
                noise::describe_interruption(in).c_str());
  }
  return 0;
}

int cmd_lookalikes(const Args& args) {
  const trace::TraceModel model = load(args);
  noise::NoiseAnalysis analysis(model, analysis_options(args));
  const Pid pid = pick_task(args, model);
  const auto interruptions = noise::group_interruptions(analysis, pid);
  const double tol = args.get_double("tolerance", 2.0) / 100.0;
  const auto pairs = noise::find_lookalikes(interruptions, tol);
  std::printf("%zu look-alike pairs (within %.1f%%, different composition):\n",
              pairs.size(), tol * 100.0);
  for (const auto& p : pairs) {
    std::printf("  %s vs %s\n", fmt_duration(p.a.total).c_str(),
                fmt_duration(p.b.total).c_str());
    std::printf("    A @ %.3f ms: %s\n", static_cast<double>(p.a.start) / 1e6,
                noise::describe_interruption(p.a).c_str());
    std::printf("    B @ %.3f ms: %s\n", static_cast<double>(p.b.start) / 1e6,
                noise::describe_interruption(p.b).c_str());
  }
  return 0;
}

int cmd_export(const Args& args) {
  // The JSON summary goes through the planner: the engine decides centrally
  // whether the pre-aggregate fast path answers (full window, default
  // options, intact index) or records must be decoded.
  if (args.has("json")) {
    query::Plan plan = base_plan(args);
    std::string path = args.get("json");
    std::string doc;
    try {
      doc = run_plan(args, plan);
    } catch (const query::PlanError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    if (path.empty()) {
      trace::OsntReader reader(trace_path(args), io_mode(args));
      path = reader.meta().workload + ".json";
    }
    if (!exporter::write_text_file(path, doc)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
  }
  const trace::TraceModel model = load(args);
  noise::NoiseAnalysis analysis(model, analysis_options(args));
  if (args.has("paraver")) {
    const std::string base = args.get("paraver", model.meta().workload);
    if (!exporter::write_paraver(analysis, base)) {
      std::fprintf(stderr, "error: cannot write %s.prv\n", base.c_str());
      return 1;
    }
    std::printf("wrote %s.prv / .pcf / .row\n", base.c_str());
    return 0;
  }
  if (args.has("csv")) {
    const std::string path = args.get("csv", model.meta().workload + ".csv");
    if (!exporter::write_text_file(path, exporter::intervals_csv(analysis))) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu noise intervals)\n", path.c_str(),
                analysis.noise_intervals().size());
    return 0;
  }
  return usage();
}

int cmd_summary(const Args& args) { return print_plan(args, base_plan(args)); }

int cmd_timeseries(const Args& args) {
  query::Plan plan = base_plan(args);
  plan.aggregate = query::Aggregate::kTimeseries;
  plan.quantum = quantum_from_args(args);
  const std::string name = args.get("activity");
  if (!name.empty()) {
    const auto kind = noise::activity_from_name(name);
    if (!kind.has_value()) {
      std::fprintf(stderr, "error: unknown activity '%s'\n", name.c_str());
      return 2;
    }
    plan.activity = *kind;
  }
  return print_plan(args, plan);
}

int cmd_topk(const Args& args) {
  query::Plan plan = base_plan(args);
  plan.aggregate = query::Aggregate::kTopK;
  plan.k = static_cast<std::size_t>(args.get_u64("k", 5));
  if (plan.k == 0) {
    std::fprintf(stderr, "error: --k must be positive\n");
    return 2;
  }
  return print_plan(args, plan);
}


/// Shared client tail: connect with --host/--port/--wire, send one request,
/// print the payload verbatim (so remote output stays byte-identical to the
/// offline exporter's files).
int client_call(const Args& args, const serve::Request& req) {
  const std::string host = args.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.get_u64("port", 0));
  if (port == 0) {
    std::fprintf(stderr, "error: --port is required\n");
    return 2;
  }
  const std::string wire_str = args.get("wire", "json");
  serve::Wire wire = serve::Wire::kJson;
  if (wire_str == "binary") {
    wire = serve::Wire::kBinary;
  } else if (wire_str != "json") {
    std::fprintf(stderr, "error: --wire must be json or binary\n");
    return 2;
  }
  serve::Client client(host, port, Deadline::after(5 * kNsPerSec), wire);
  if (!client.ok()) {
    std::fprintf(stderr, "error: cannot connect to %s:%u: %s\n", host.c_str(), port,
                 client.connect_error().c_str());
    return 1;
  }
  const serve::Response resp = client.call(req, Deadline::after(60 * kNsPerSec));
  if (!resp.ok) {
    std::fprintf(stderr, "error: %s: %s\n", resp.error.c_str(), resp.message.c_str());
    return 1;
  }
  std::fwrite(resp.payload.data(), 1, resp.payload.size(), stdout);
  return 0;
}

int cmd_query(const Args& args) {
  if (args.positionals().empty()) return usage();
  const std::string op_str = args.positionals()[0];
  serve::Request req;
  req.id = 1;
  if (op_str == "list") req.op = serve::Op::kList;
  else if (op_str == "info") req.op = serve::Op::kInfo;
  else if (op_str == "summary") req.op = serve::Op::kSummary;
  else if (op_str == "chart") req.op = serve::Op::kChart;
  else if (op_str == "window") req.op = serve::Op::kWindow;
  else if (op_str == "timeseries") req.op = serve::Op::kTimeseries;
  else if (op_str == "topk") req.op = serve::Op::kTopK;
  else if (op_str == "refresh") req.op = serve::Op::kRefresh;
  else if (op_str == "alerts") req.op = serve::Op::kAlerts;
  else if (op_str == "monitor_status") req.op = serve::Op::kMonitorStatus;
  else if (op_str == "metrics") req.op = serve::Op::kMetrics;
  else if (op_str == "ping") req.op = serve::Op::kPing;
  else {
    std::fprintf(stderr, "error: unknown query op '%s'\n", op_str.c_str());
    return usage();
  }
  if (args.positionals().size() > 1) req.trace = args.positionals()[1];
  if (args.has("window")) {
    const std::string w = args.get("window");
    const std::size_t colon = w.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "error: --window expects A:B in milliseconds\n");
      return 2;
    }
    req.has_window = true;
    req.window_from_ms = std::strtod(w.substr(0, colon).c_str(), nullptr);
    req.window_to_ms = std::strtod(w.substr(colon + 1).c_str(), nullptr);
  }
  if (args.has("task")) req.task = static_cast<Pid>(args.get_u64("task", 0));
  req.quantum_us = args.get_u64("quantum-us", 1000);
  if (args.has("cpu")) req.cpu = static_cast<CpuId>(args.get_u64("cpu", 0));
  req.activity = args.get("activity");
  req.k = args.get_u64("k", 5);
  if (args.has("deadline-ms")) req.deadline = args.get_u64("deadline-ms", 0) * kNsPerMs;
  req.stall = args.get_u64("stall-ms", 0) * kNsPerMs;

  return client_call(args, req);
}

int cmd_monitor(const Args& args) {
  if (args.positionals().empty()) {
    std::fprintf(stderr, "error: monitor expects status or alerts\n");
    return usage();
  }
  const std::string what = args.positionals()[0];
  serve::Request req;
  req.id = 1;
  if (what == "status") req.op = serve::Op::kMonitorStatus;
  else if (what == "alerts") req.op = serve::Op::kAlerts;
  else if (what == "refresh") req.op = serve::Op::kRefresh;
  else {
    std::fprintf(stderr, "error: unknown monitor request '%s'\n", what.c_str());
    return usage();
  }
  return client_call(args, req);
}

int cmd_rolling(const Args& args) {
  if (args.positionals().empty()) {
    std::fprintf(stderr, "error: missing segment store directory\n");
    return usage();
  }
  const std::string& dir = args.positionals()[0];
  const std::string what =
      args.positionals().size() > 1 ? args.positionals()[1] : "summary";
  query::Plan plan = base_plan(args);
  if (what == "timeseries") {
    plan.aggregate = query::Aggregate::kTimeseries;
    plan.quantum = quantum_from_args(args);
    const std::string name = args.get("activity");
    if (!name.empty()) {
      const auto kind = noise::activity_from_name(name);
      if (!kind.has_value()) {
        std::fprintf(stderr, "error: unknown activity '%s'\n", name.c_str());
        return 2;
      }
      plan.activity = *kind;
    }
  } else if (what == "topk") {
    plan.aggregate = query::Aggregate::kTopK;
    plan.k = static_cast<std::size_t>(args.get_u64("k", 5));
  } else if (what != "summary") {
    std::fprintf(stderr, "error: unknown rolling aggregate '%s'\n", what.c_str());
    return usage();
  }
  monitor::RollingView view(dir);
  const auto pool = decode_pool(args);
  try {
    const std::string doc = view.run(plan, pool.get());
    std::fwrite(doc.data(), 1, doc.size(), stdout);
  } catch (const query::PlanError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_diff(const Args& args) {
  if (args.positionals().size() < 2) return usage();
  const trace::TraceModel a = trace::read_trace_file(args.positionals()[0]);
  const trace::TraceModel b = trace::read_trace_file(args.positionals()[1]);
  noise::NoiseAnalysis aa(a, analysis_options(args));
  noise::NoiseAnalysis ab(b, analysis_options(args));

  std::printf("A: %s (%s)   B: %s (%s)\n\n", a.meta().workload.c_str(),
              fmt_duration(a.duration()).c_str(), b.meta().workload.c_str(),
              fmt_duration(b.duration()).c_str());
  TextTable table({"activity", "A freq", "B freq", "A avg(ns)", "B avg(ns)", "avg delta"});
  for (int k = 0; k < static_cast<int>(noise::ActivityKind::kMaxKind); ++k) {
    const auto kind = static_cast<noise::ActivityKind>(k);
    const noise::EventStats sa = aa.activity_stats(kind);
    const noise::EventStats sb = ab.activity_stats(kind);
    if (sa.count == 0 && sb.count == 0) continue;
    const double delta = sa.avg_ns > 0 ? (sb.avg_ns - sa.avg_ns) / sa.avg_ns : 0.0;
    table.add_row({std::string(noise::activity_name(kind)),
                   fmt_fixed(sa.freq_ev_per_sec, 1), fmt_fixed(sb.freq_ev_per_sec, 1),
                   fmt_fixed(sa.avg_ns, 0), fmt_fixed(sb.avg_ns, 0),
                   (delta >= 0 ? "+" : "") + fmt_percent(delta)});
  }
  std::printf("%s\n", table.render().c_str());

  auto noise_pct = [](const noise::NoiseAnalysis& an, const trace::TraceModel& m) {
    DurNs total = 0;
    for (const Pid pid : m.app_pids()) total += an.total_noise(pid);
    return 100.0 * static_cast<double>(total) /
           (static_cast<double>(m.duration()) *
            static_cast<double>(std::max<std::size_t>(m.app_pids().size(), 1)));
  };
  std::printf("per-rank noise: A %.3f%%   B %.3f%%\n", noise_pct(aa, a), noise_pct(ab, b));
  return 0;
}

int cmd_scalability(const Args& args) {
  const trace::TraceModel model = load(args);
  noise::NoiseAnalysis analysis(model, analysis_options(args));
  const noise::NoiseProfile profile = noise::NoiseProfile::from_analysis(analysis);
  std::printf("profile: %.0f noise events/s/rank, mean %s, %.3f%% of rank time\n\n",
              profile.events_per_sec,
              fmt_duration(static_cast<DurNs>(profile.mean_duration_ns)).c_str(),
              100.0 * profile.noise_fraction);

  std::vector<std::uint64_t> ranks{1, 8, 64, 512, 4096, 32768};
  if (args.has("ranks")) {
    ranks.clear();
    const std::string list = args.get("ranks");
    std::size_t pos = 0;
    while (pos < list.size()) {
      std::size_t next = list.find(',', pos);
      if (next == std::string::npos) next = list.size();
      ranks.push_back(static_cast<std::uint64_t>(
          std::strtoull(list.substr(pos, next - pos).c_str(), nullptr, 10)));
      pos = next + 1;
    }
  }
  noise::ScalabilityParams params;
  params.granularity = args.get_u64("granularity-us", 1000) * kNsPerUs;
  params.iterations = static_cast<std::uint32_t>(args.get_u64("iterations", 200));

  TextTable table({"ranks", "E[max noise]/window", "slowdown", "efficiency"});
  for (const auto& pt : noise::extrapolate_scalability(profile, ranks, params)) {
    table.add_row({std::to_string(pt.ranks),
                   fmt_duration(static_cast<DurNs>(pt.mean_max_noise_ns)),
                   fmt_fixed(pt.slowdown, 3), fmt_fixed(pt.efficiency, 3)});
  }
  std::printf("bulk-synchronous model, %s compute between barriers:\n%s",
              fmt_duration(params.granularity).c_str(), table.render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args(argc, argv);
  // Malformed or corrupt trace input is an expected condition, not a crash:
  // every reader path throws trace::TraceReadError with the byte offset.
  try {
    if (cmd == "run") return cmd_run(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "breakdown") return cmd_breakdown(args);
    if (cmd == "chart") return cmd_chart(args);
    if (cmd == "timeline") return cmd_timeline(args);
    if (cmd == "interruptions") return cmd_interruptions(args);
    if (cmd == "lookalikes") return cmd_lookalikes(args);
    if (cmd == "summary") return cmd_summary(args);
    if (cmd == "timeseries") return cmd_timeseries(args);
    if (cmd == "topk") return cmd_topk(args);
    if (cmd == "export") return cmd_export(args);
    if (cmd == "query") return cmd_query(args);
    if (cmd == "monitor") return cmd_monitor(args);
    if (cmd == "rolling") return cmd_rolling(args);
    if (cmd == "diff") return cmd_diff(args);
    if (cmd == "scalability") return cmd_scalability(args);
  } catch (const trace::TraceReadError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
