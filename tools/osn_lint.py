#!/usr/bin/env python3
"""Project lint for the OS-noise repo's hot and decode paths.

Fast, dependency-free checks that clang-tidy cannot express (or that must
run in containers without clang). Wired into ctest as `StaticLint` and into
the `check-static` target, so regressions fail the default test suite.

Rules
-----
bare-assert       No `assert(...)` / `abort()` in src/: contracts use the
                  OSN_ASSERT / OSN_DASSERT tiers (common/assert.hpp) so they
                  print a message, honor the checker's assert handler, and
                  can be compiled out per tier.
decode-throw      Trace-decode paths (src/trace/trace_io.*, osnt_reader.*)
                  treat malformed input as an input condition: OSN_ASSERT on
                  decoded values is forbidden there — throw TraceReadError.
                  (Writer-side ordering contracts are OSN_DASSERT, allowed.)
unchecked-narrow  Decode paths must not `static_cast` a freshly decoded
                  varint into a narrower field — use trace::narrow<T>(),
                  which throws TraceReadError when the value does not fit.
wallclock         Hot paths (src/tracebuf/) must not read wall-clock time
                  (std::system_clock, gettimeofday, time(NULL)): timestamps
                  come from the monotonic clock plumbed through the engine.
query-pushdown    All filter/window/aggregate execution goes through the
                  planner: production code outside src/query/ must not call
                  read_window() or index_summary_json() directly — those are
                  the planner's primitives, and bypassing it resurrects the
                  duplicated execution paths this layer deleted. The trace
                  layer itself (src/trace/) and the primitive's home
                  (src/export/) are exempt, as are tests and benches.
net-layering      src/net/ is the bottom of the network stack: frames, not
                  requests. It must not include serve/, query/, trace/,
                  noise/, or export/ headers — protocol knowledge flows down
                  into it only through the net::Handler interface.
raw-socket        The EINTR / partial-transfer / SIGPIPE discipline lives in
                  one place (the sockio helpers in common/socket.cpp). Raw
                  ::send / ::recv / ::poll / ::accept calls are forbidden
                  outside common/socket.cpp and src/net/ (the readiness
                  layer's poller backends legitimately speak poll(2)).

Suppress a finding by appending `// osn-lint: allow(<rule>)` to the line.

Usage: osn_lint.py [--root DIR]   (exit 0 = clean, 1 = findings)
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

DECODE_PATHS = (
    "src/trace/trace_io.cpp",
    "src/trace/trace_io.hpp",
    "src/trace/osnt_reader.cpp",
    "src/trace/osnt_reader.hpp",
)

HOT_PATHS_PREFIX = "src/tracebuf/"

ALLOW_RE = re.compile(r"//\s*osn-lint:\s*allow\(([a-z-]+)\)")

BARE_ASSERT_RE = re.compile(r"(?<![_A-Za-z])assert\s*\(")
ABORT_RE = re.compile(r"(?<![_A-Za-z:.>])abort\s*\(")
OSN_ASSERT_RE = re.compile(r"\bOSN_ASSERT(?:_MSG)?\s*\(")
NARROW_CAST_RE = re.compile(
    r"static_cast<\s*(?:std::)?u?int(?:8|16|32)_t\s*>\s*\(\s*get_varint")
WALLCLOCK_RE = re.compile(
    r"std::chrono::system_clock|\bgettimeofday\s*\(|(?<![_A-Za-z])time\s*\(\s*(?:NULL|nullptr|0)\s*\)")
QUERY_PRIMITIVE_RE = re.compile(r"\b(?:read_window|index_summary_json)\s*\(")
QUERY_EXEMPT_PREFIXES = ("src/query/", "src/trace/", "src/export/")
NET_LAYER_PREFIX = "src/net/"
NET_FORBIDDEN_INCLUDE_RE = re.compile(
    r'#\s*include\s*"(?:serve|query|trace|noise|export)/')
RAW_SOCKET_RE = re.compile(r"::\s*(?:send|sendto|recv|recvfrom|poll|accept4?)\s*\(")
RAW_SOCKET_EXEMPT = ("src/common/socket.cpp", "src/net/")


def strip_comments_and_strings(line: str) -> str:
    """Crude single-line scrub: drop string/char literals and // comments so
    the patterns do not fire on prose. Block comments are handled per-file."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    idx = line.find("//")
    if idx >= 0:
        line = line[:idx]
    return line


def file_lines_code(text: str):
    """Yields (lineno, code, raw) with block comments blanked out."""
    # Blank /* ... */ spans, preserving newlines so line numbers stay true.
    def blank(m: re.Match) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.S)
    for i, raw in enumerate(text.splitlines(), start=1):
        yield i, strip_comments_and_strings(raw), raw


def lint_file(root: pathlib.Path, rel: str) -> list[str]:
    path = root / rel
    findings = []
    is_decode = rel in DECODE_PATHS
    is_hot = rel.startswith(HOT_PATHS_PREFIX)
    text = path.read_text(encoding="utf-8", errors="replace")

    for lineno, code, raw in file_lines_code(text):
        allowed = set(ALLOW_RE.findall(raw))

        def report(rule: str, msg: str) -> None:
            if rule not in allowed:
                findings.append(f"{rel}:{lineno}: [{rule}] {msg}")

        if BARE_ASSERT_RE.search(code):
            report("bare-assert",
                   "bare assert(); use OSN_ASSERT/OSN_DASSERT or throw")
        if ABORT_RE.search(code) and rel != "src/common/assert.cpp":
            report("bare-assert",
                   "direct abort(); route through OSN_ASSERT so handlers run")
        if is_decode and OSN_ASSERT_RE.search(code):
            report("decode-throw",
                   "OSN_ASSERT in a decode path; malformed input must throw "
                   "TraceReadError (writer-side contracts use OSN_DASSERT)")
        if is_decode and NARROW_CAST_RE.search(code):
            report("unchecked-narrow",
                   "unchecked narrowing of a decoded varint; use "
                   "trace::narrow<T>()")
        if is_hot and WALLCLOCK_RE.search(code):
            report("wallclock",
                   "wall-clock read in a hot path; use the monotonic "
                   "timestamp source")
        if (not rel.startswith(QUERY_EXEMPT_PREFIXES)
                and QUERY_PRIMITIVE_RE.search(code)):
            report("query-pushdown",
                   "direct read_window()/index_summary_json() call outside "
                   "src/query/; build a query::Plan and run it through the "
                   "Engine instead")
        # Includes are string literals, which strip_comments_and_strings
        # blanks — match the raw line for this rule.
        if (rel.startswith(NET_LAYER_PREFIX)
                and NET_FORBIDDEN_INCLUDE_RE.search(raw)):
            report("net-layering",
                   "src/net/ must not include serve/query/trace/noise/export "
                   "headers; protocol logic reaches the readiness core only "
                   "through net::Handler")
        if (not rel.startswith(RAW_SOCKET_EXEMPT[1])
                and rel != RAW_SOCKET_EXEMPT[0]
                and RAW_SOCKET_RE.search(code)):
            report("raw-socket",
                   "raw socket syscall outside common/socket.cpp; use the "
                   "sockio helpers (shared EINTR/partial-write/SIGPIPE "
                   "discipline)")
    return findings


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".", help="repo root (default: cwd)")
    args = ap.parse_args()
    root = pathlib.Path(args.root).resolve()

    files = sorted(
        str(p.relative_to(root))
        for tree in ("src", "tools")
        for p in (root / tree).rglob("*")
        if p.suffix in (".cpp", ".hpp") and p.is_file())
    if not files:
        print(f"osn_lint: no sources under {root}/src", file=sys.stderr)
        return 1

    findings: list[str] = []
    for rel in files:
        findings.extend(lint_file(root, rel))

    for f in findings:
        print(f)
    print(f"osn_lint: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
