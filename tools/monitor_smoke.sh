#!/bin/sh
# Monitoring daemon end-to-end smoke test, run as part of the default ctest
# suite.
#
# Replays a 2s trace through osn-monitord with aggressive rotation (120ms
# segments), retention (1.5s -> at least one compaction cycle) and a
# synthetic noise step injected at 1.6s, then checks:
#   * the store rotated >= 3 segments and compacted >= 1,
#   * exactly one alert was raised, identical on the JSON and binary wires,
#   * the refresh op answers and the catalog lists sealed segments,
#   * planner queries over the rolling store are byte-identical to the same
#     queries over the uncut trace (full-span summary via the merged
#     pre-aggregate path, a windowed summary via the record path),
#   * SIGTERM produces a clean exit.
#
# Usage: monitor_smoke.sh <osn-analyze> <osn-monitord> <workdir>
set -eu

ANALYZE=$1
MONITORD=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK"

"$ANALYZE" run ftq --seconds 2 --seed 7 -o "$WORK/ftq.osnt" > /dev/null 2>&1

"$MONITORD" --replay "$WORK/ftq.osnt" --dir "$WORK/store" \
  --segment-ms 120 --retain-ms 1500 --window-ms 50 --warmup 8 --sustain 3 \
  --inject-at-ms 1600 --inject-period-us 2000 --inject-duration-us 300 \
  --port 0 --port-file "$WORK/port" --workers 2 2> "$WORK/monitord.log" &
MON_PID=$!
trap 'kill "$MON_PID" 2>/dev/null || true' EXIT

# The port file doubles as the readiness signal.
tries=0
while [ ! -s "$WORK/port" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "FAIL: daemon never wrote the port file" >&2
    cat "$WORK/monitord.log" >&2
    exit 1
  fi
  sleep 0.1
done
PORT=$(cat "$WORK/port")

# The replay is unpaced; poll monitor status until it reports completion.
tries=0
while ! "$ANALYZE" monitor status --port "$PORT" | grep -q '"finished": true'; do
  tries=$((tries + 1))
  if [ "$tries" -gt 300 ]; then
    echo "FAIL: replay never finished" >&2
    cat "$WORK/monitord.log" >&2
    exit 1
  fi
  sleep 0.1
done

"$ANALYZE" monitor status --port "$PORT" > "$WORK/status.json"
field() { grep "\"$1\"" "$WORK/status.json" | tr -dc '0-9'; }
[ "$(field segments_sealed)" -ge 3 ] || {
  echo "FAIL: expected >= 3 sealed segments" >&2; cat "$WORK/status.json" >&2; exit 1; }
[ "$(field compactions)" -ge 1 ] || {
  echo "FAIL: expected >= 1 compaction" >&2; cat "$WORK/status.json" >&2; exit 1; }

# Exactly one alert from the injected noise step, identical on both wires.
"$ANALYZE" monitor alerts --port "$PORT" > "$WORK/alerts.json"
"$ANALYZE" monitor alerts --port "$PORT" --wire binary > "$WORK/alerts_osnb.json"
cmp "$WORK/alerts.json" "$WORK/alerts_osnb.json" || {
  echo "FAIL: alerts differ between JSON and binary wires" >&2; exit 1; }
grep -q '"count": 1' "$WORK/alerts.json" || {
  echo "FAIL: expected exactly one alert" >&2; cat "$WORK/alerts.json" >&2; exit 1; }

"$ANALYZE" monitor status --port "$PORT" --wire binary > "$WORK/status_osnb.json"
cmp "$WORK/status.json" "$WORK/status_osnb.json" || {
  echo "FAIL: status differs between JSON and binary wires" >&2; exit 1; }

# The store directory is a live catalog: refresh answers, list sees segments.
"$ANALYZE" monitor refresh --port "$PORT" | grep -q '"refreshed": true' || {
  echo "FAIL: refresh op did not answer" >&2; exit 1; }
"$ANALYZE" query list --port "$PORT" | grep -q '"name": "seg-' || {
  echo "FAIL: catalog does not list sealed segments" >&2; exit 1; }

# Rolling-store queries must be byte-identical to the uncut trace's. The
# full-span summary exercises the merged pre-aggregate path (compacted
# summary segments included); the windowed summary exercises the record
# path over the retained full-resolution span.
"$ANALYZE" summary "$WORK/ftq.osnt" > "$WORK/uncut_summary.json"
"$ANALYZE" rolling "$WORK/store" > "$WORK/rolled_summary.json"
cmp "$WORK/uncut_summary.json" "$WORK/rolled_summary.json" || {
  echo "FAIL: rolling summary differs from uncut trace summary" >&2; exit 1; }

"$ANALYZE" summary "$WORK/ftq.osnt" --window 700:1900 > "$WORK/uncut_window.json"
"$ANALYZE" rolling "$WORK/store" summary --window 700:1900 > "$WORK/rolled_window.json"
cmp "$WORK/uncut_window.json" "$WORK/rolled_window.json" || {
  echo "FAIL: rolling windowed summary differs from uncut trace" >&2; exit 1; }

kill -TERM "$MON_PID"
trap - EXIT
wait "$MON_PID" || { echo "FAIL: daemon did not exit cleanly" >&2; exit 1; }
echo "monitor smoke OK"
