// osn-monitord — the always-on monitoring daemon.
//
// Runs an EventSource (today: a replayed OSNT file, optionally paced to
// real time) through the monitoring pipeline (src/monitor/): the rolling
// segment store rotates, retains and compacts OSNT v3 segments under
// --dir, while the baseline/regression detector watches windowed noise
// metrics and raises alerts on sustained deviations. The store directory
// doubles as an osn-served catalog: this daemon embeds the same serve
// stack, so `osn-analyze query list/summary/... --port N` works against
// the live store, and the monitor-only ops (`monitor_status`, `alerts`,
// `refresh`) answer from the attached Monitor on both wires.
//
// Replay is driven by trace time, not wall clock (see segment_store.hpp),
// so the same input file yields the identical segment layout every run;
// --speed only throttles how fast the records are fed, never what is
// written.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/clock.hpp"
#include "monitor/monitor.hpp"
#include "serve/server.hpp"
#include "trace/event_source.hpp"

namespace {

using namespace osn;

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(
      stderr,
      "osn-monitord — always-on noise monitor with a rolling segment store\n\n"
      "  osn-monitord --replay FILE --dir DIR [store options] [detector\n"
      "               options] [serve options]\n\n"
      "  --replay FILE        OSNT trace to replay as the event source\n"
      "  --dir DIR            segment store directory (created if missing)\n"
      "  --speed X            pace replay at X times real time (0 = unpaced,\n"
      "                       the default)\n\n"
      "store options:\n"
      "  --segment-ms N       rotate segments after N ms of trace time\n"
      "                       (default 1000; 0 = no time-based rotation)\n"
      "  --segment-bytes N    ... or after N flushed bytes (default 8388608)\n"
      "  --retain-ms N        expire full-res segments older than N ms behind\n"
      "                       the newest (default 0 = keep everything)\n"
      "  --retain-bytes N     ... or beyond N full-res bytes (default 0)\n"
      "  --no-compact         delete expired segments instead of downsampling\n"
      "                       them to summary segments\n"
      "  --chunk-records N    records per chunk in each segment (default 4096)\n\n"
      "detector options:\n"
      "  --window-ms N        baseline window length (default 50)\n"
      "  --warmup N           windows to learn the baseline (default 8)\n"
      "  --sigma X            alert threshold in stddevs (default 4.0)\n"
      "  --min-ratio X        ... and at least X times the mean (default 1.5)\n"
      "  --sustain N          consecutive bad windows before alerting (default 3)\n"
      "  --inject-at-ms N     inject synthetic noise from N ms of trace time\n"
      "                       (validation aid; observations only, the stored\n"
      "                       segments are untouched)\n"
      "  --inject-period-us N injection period (default 2000)\n"
      "  --inject-duration-us N  injected interval length (default 200)\n\n"
      "serve options:\n"
      "  --host H             bind address (default 127.0.0.1)\n"
      "  --port N             TCP port; 0 = kernel-assigned (default 0)\n"
      "  --port-file FILE     write the bound port to FILE once listening\n"
      "  --workers N          request worker threads (default 2)\n"
      "  --no-serve           exit after the replay instead of serving\n");
  return 2;
}

const char* arg_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "error: %s expects a value\n", argv[i]);
    std::exit(usage());
  }
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  std::string replay;
  std::string port_file;
  double speed = 0.0;
  bool serve_store = true;
  monitor::MonitorOptions mopts;
  serve::ServerOptions sopts;
  sopts.workers = 2;
  std::uint64_t inject_at_ms = 0;
  bool inject = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--replay") {
      replay = arg_value(argc, argv, i);
    } else if (arg == "--dir") {
      mopts.store.dir = arg_value(argc, argv, i);
    } else if (arg == "--speed") {
      speed = std::strtod(arg_value(argc, argv, i), nullptr);
    } else if (arg == "--segment-ms") {
      mopts.store.segment_ns =
          static_cast<DurNs>(std::strtoull(arg_value(argc, argv, i), nullptr, 10)) *
          kNsPerMs;
    } else if (arg == "--segment-bytes") {
      mopts.store.segment_bytes = std::strtoull(arg_value(argc, argv, i), nullptr, 10);
    } else if (arg == "--retain-ms") {
      mopts.store.retain_ns =
          static_cast<DurNs>(std::strtoull(arg_value(argc, argv, i), nullptr, 10)) *
          kNsPerMs;
    } else if (arg == "--retain-bytes") {
      mopts.store.retain_bytes = std::strtoull(arg_value(argc, argv, i), nullptr, 10);
    } else if (arg == "--no-compact") {
      mopts.store.compact = false;
    } else if (arg == "--chunk-records") {
      mopts.store.chunk_records =
          static_cast<std::size_t>(std::strtoull(arg_value(argc, argv, i), nullptr, 10));
    } else if (arg == "--window-ms") {
      mopts.window_ns =
          static_cast<DurNs>(std::strtoull(arg_value(argc, argv, i), nullptr, 10)) *
          kNsPerMs;
    } else if (arg == "--warmup") {
      mopts.detector.warmup_windows =
          static_cast<std::size_t>(std::strtoull(arg_value(argc, argv, i), nullptr, 10));
    } else if (arg == "--sigma") {
      mopts.detector.sigma = std::strtod(arg_value(argc, argv, i), nullptr);
    } else if (arg == "--min-ratio") {
      mopts.detector.min_ratio = std::strtod(arg_value(argc, argv, i), nullptr);
    } else if (arg == "--sustain") {
      mopts.detector.sustain =
          static_cast<std::size_t>(std::strtoull(arg_value(argc, argv, i), nullptr, 10));
    } else if (arg == "--inject-at-ms") {
      inject = true;
      inject_at_ms = std::strtoull(arg_value(argc, argv, i), nullptr, 10);
    } else if (arg == "--inject-period-us") {
      mopts.inject.period_ns =
          static_cast<DurNs>(std::strtoull(arg_value(argc, argv, i), nullptr, 10)) *
          kNsPerUs;
    } else if (arg == "--inject-duration-us") {
      mopts.inject.duration_ns =
          static_cast<DurNs>(std::strtoull(arg_value(argc, argv, i), nullptr, 10)) *
          kNsPerUs;
    } else if (arg == "--host") {
      sopts.host = arg_value(argc, argv, i);
    } else if (arg == "--port") {
      sopts.port = static_cast<std::uint16_t>(std::atoi(arg_value(argc, argv, i)));
    } else if (arg == "--port-file") {
      port_file = arg_value(argc, argv, i);
    } else if (arg == "--workers") {
      sopts.workers = static_cast<std::size_t>(std::atoll(arg_value(argc, argv, i)));
    } else if (arg == "--no-serve") {
      serve_store = false;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return usage();
    }
  }
  if (replay.empty() || mopts.store.dir.empty()) {
    std::fprintf(stderr, "error: --replay and --dir are required\n");
    return usage();
  }

  try {
    trace::FileEventSource source(replay);
    const trace::TraceMeta meta = source.meta();
    if (inject) {
      mopts.inject.enabled = true;
      mopts.inject.start_ns = meta.start_ns + inject_at_ms * kNsPerMs;
    }
    monitor::Monitor mon(mopts, meta, source.tasks());
    if (!mon.ok()) {
      std::fprintf(stderr, "error: cannot write segment store in %s\n",
                   mopts.store.dir.c_str());
      return 1;
    }

    // The serve stack comes up before the replay so a dashboard can watch
    // the store fill (list/refresh see segments as they seal).
    sopts.dir = mopts.store.dir;
    sopts.monitor_status = [&mon] { return mon.status_json(); };
    sopts.monitor_alerts = [&mon] { return mon.alerts_json(); };
    serve::Server server(sopts);
    if (serve_store) {
      std::string error;
      if (!server.start(&error)) {
        std::fprintf(stderr, "error: cannot listen on %s:%u: %s\n", sopts.host.c_str(),
                     sopts.port, error.c_str());
        return 1;
      }
      std::fprintf(stderr, "osn-monitord: store %s on %s:%u (%zu workers)\n",
                   mopts.store.dir.c_str(), sopts.host.c_str(), server.port(),
                   sopts.workers);
      if (!port_file.empty()) {
        std::FILE* f = std::fopen(port_file.c_str(), "w");
        if (!f) {
          std::fprintf(stderr, "error: cannot write %s\n", port_file.c_str());
          return 1;
        }
        std::fprintf(f, "%u\n", server.port());
        std::fclose(f);
      }
    }

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);

    // Replay. Pacing maps trace time onto wall time at 1/speed scale; the
    // sleep is bounded per record so SIGTERM is honoured within ~100ms.
    const TimeNs wall_start = monotonic_now_ns();
    std::uint64_t replayed = 0;
    source.for_each([&](const tracebuf::EventRecord& rec) {
      if (g_stop) return;
      if (speed > 0.0 && rec.timestamp > meta.start_ns) {
        const auto trace_elapsed = static_cast<double>(rec.timestamp - meta.start_ns);
        const TimeNs due =
            wall_start + static_cast<TimeNs>(trace_elapsed / speed);
        while (!g_stop && monotonic_now_ns() < due)
          Deadline::at(due).sleep_remaining(100 * kNsPerMs);
      }
      mon.ingest(rec);
      ++replayed;
    });
    mon.finish(meta.end_ns);

    const monitor::StoreStats stats = mon.store_stats();
    std::fprintf(stderr,
                 "osn-monitord: replayed %llu records -> %llu segments "
                 "(%llu forced cuts, %llu compacted, %llu deleted), %zu alert(s)\n",
                 static_cast<unsigned long long>(replayed),
                 static_cast<unsigned long long>(stats.segments_sealed),
                 static_cast<unsigned long long>(stats.rotations_forced),
                 static_cast<unsigned long long>(stats.compactions),
                 static_cast<unsigned long long>(stats.segments_deleted),
                 mon.alert_count());
    if (!mon.ok()) {
      std::fprintf(stderr, "error: segment store failed mid-replay\n");
      return 1;
    }

    if (serve_store) {
      while (!g_stop) Deadline::after(100 * kNsPerMs).sleep_remaining();
      std::fprintf(stderr, "osn-monitord: draining (%llu requests served)\n",
                   static_cast<unsigned long long>(server.metrics().requests()));
      server.stop();
    }
  } catch (const trace::TraceReadError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
