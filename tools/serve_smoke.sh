#!/bin/sh
# Daemon <-> client smoke test, run as part of the default ctest suite.
#
# Produces a short trace, starts osn-served on a kernel-assigned port,
# round-trips list/summary/window/chart/timeseries/topk/metrics through
# `osn-analyze query`, checks every served document is byte-identical to
# the offline planner's, then SIGTERMs the daemon and requires a clean exit.
#
# Usage: serve_smoke.sh <osn-analyze> <osn-served> <workdir>
set -eu

ANALYZE=$1
SERVED=$2
WORK=$3

mkdir -p "$WORK/catalog"
rm -f "$WORK/catalog/ftq.osnt" "$WORK/port" "$WORK/served.json" \
      "$WORK/served_window.json" "$WORK/offline.json" "$WORK/offline_window.json" \
      "$WORK/served_chart.json" "$WORK/offline_chart.json" \
      "$WORK/served_ts.json" "$WORK/offline_ts.json" \
      "$WORK/served_topk.json" "$WORK/offline_topk.json"

"$ANALYZE" run ftq --seconds 1 --seed 7 -o "$WORK/catalog/ftq.osnt" > /dev/null 2>&1

"$SERVED" --dir "$WORK/catalog" --port 0 --port-file "$WORK/port" --workers 2 &
SERVED_PID=$!
trap 'kill "$SERVED_PID" 2>/dev/null || true' EXIT

# The port file doubles as the readiness signal.
tries=0
while [ ! -s "$WORK/port" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "FAIL: daemon never wrote the port file" >&2
    exit 1
  fi
  sleep 0.1
done
PORT=$(cat "$WORK/port")

"$ANALYZE" query list --port "$PORT" | grep -q '"name": "ftq"' || {
  echo "FAIL: list does not mention the trace" >&2; exit 1; }

"$ANALYZE" query summary ftq --port "$PORT" > "$WORK/served.json"
"$ANALYZE" export "$WORK/catalog/ftq.osnt" --json "$WORK/offline.json" > /dev/null
cmp "$WORK/served.json" "$WORK/offline.json" || {
  echo "FAIL: served summary differs from offline export" >&2; exit 1; }

"$ANALYZE" query window ftq --window 100:900 --port "$PORT" > "$WORK/served_window.json"
"$ANALYZE" export "$WORK/catalog/ftq.osnt" --window 100:900 \
  --json "$WORK/offline_window.json" > /dev/null
cmp "$WORK/served_window.json" "$WORK/offline_window.json" || {
  echo "FAIL: served window differs from offline export" >&2; exit 1; }

# The aggregate ops run through one planner on both sides: every document
# must be byte-identical between the daemon and the offline CLI.
"$ANALYZE" query chart ftq --quantum-us 200 --port "$PORT" > "$WORK/served_chart.json"
"$ANALYZE" chart "$WORK/catalog/ftq.osnt" --quantum-us 200 --json > "$WORK/offline_chart.json"
cmp "$WORK/served_chart.json" "$WORK/offline_chart.json" || {
  echo "FAIL: served chart differs from offline chart" >&2; exit 1; }

"$ANALYZE" query timeseries ftq --activity timer_interrupt --quantum-us 500 \
  --port "$PORT" > "$WORK/served_ts.json"
"$ANALYZE" timeseries "$WORK/catalog/ftq.osnt" --activity timer_interrupt \
  --quantum-us 500 > "$WORK/offline_ts.json"
cmp "$WORK/served_ts.json" "$WORK/offline_ts.json" || {
  echo "FAIL: served timeseries differs from offline timeseries" >&2; exit 1; }

"$ANALYZE" query topk ftq --k 2 --port "$PORT" > "$WORK/served_topk.json"
"$ANALYZE" topk "$WORK/catalog/ftq.osnt" --k 2 > "$WORK/offline_topk.json"
cmp "$WORK/served_topk.json" "$WORK/offline_topk.json" || {
  echo "FAIL: served topk differs from offline topk" >&2; exit 1; }

"$ANALYZE" query metrics --port "$PORT" | grep -q '"requests"' || {
  echo "FAIL: metrics payload missing counters" >&2; exit 1; }

kill -TERM "$SERVED_PID"
trap - EXIT
wait "$SERVED_PID" || { echo "FAIL: daemon did not exit cleanly" >&2; exit 1; }
echo "serve smoke OK"
