#!/bin/sh
# Binary-wire smoke test, run beside serve_smoke.sh in the default suite.
#
# Same daemon, same queries — but through `osn-analyze query --wire binary`
# (the OSNB length-prefixed framing) instead of the JSON line protocol. Every
# served document is byte-compared against the JSON wire's answer for the
# same query, which is itself byte-compared against the offline planner by
# serve_smoke.sh: the two smokes together pin all three paths to one output.
# Also exercises the non-default readiness backend (--poll-backend) and an
# idle timeout, so the portable poll(2) loop sees end-to-end traffic in CI.
#
# Usage: serve_smoke_binary.sh <osn-analyze> <osn-served> <workdir>
set -eu

ANALYZE=$1
SERVED=$2
WORK=$3

mkdir -p "$WORK/catalog"
rm -f "$WORK/catalog/ftq.osnt" "$WORK/port"

"$ANALYZE" run ftq --seconds 1 --seed 7 -o "$WORK/catalog/ftq.osnt" > /dev/null 2>&1

"$SERVED" --dir "$WORK/catalog" --port 0 --port-file "$WORK/port" --workers 2 \
  --poll-backend --idle-timeout-ms 30000 &
SERVED_PID=$!
trap 'kill "$SERVED_PID" 2>/dev/null || true' EXIT

tries=0
while [ ! -s "$WORK/port" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "FAIL: daemon never wrote the port file" >&2
    exit 1
  fi
  sleep 0.1
done
PORT=$(cat "$WORK/port")

# Each op: JSON wire vs OSNB wire, byte-for-byte.
for op in "list" "summary ftq" "window ftq --window 100:900" \
          "chart ftq --quantum-us 200" \
          "timeseries ftq --activity timer_interrupt --quantum-us 500" \
          "topk ftq --k 2"; do
  # shellcheck disable=SC2086 # op intentionally word-splits into args
  "$ANALYZE" query $op --port "$PORT" --wire json > "$WORK/wire_json.out"
  # shellcheck disable=SC2086
  "$ANALYZE" query $op --port "$PORT" --wire binary > "$WORK/wire_binary.out"
  cmp "$WORK/wire_json.out" "$WORK/wire_binary.out" || {
    echo "FAIL: wire documents differ for: $op" >&2; exit 1; }
done

# Both wires must be visible in the per-wire request counters.
"$ANALYZE" query metrics --port "$PORT" --wire binary > "$WORK/metrics.out"
grep -q '"requests_json": [1-9]' "$WORK/metrics.out" || {
  echo "FAIL: metrics missing json wire requests" >&2; exit 1; }
grep -q '"requests_osnb": [1-9]' "$WORK/metrics.out" || {
  echo "FAIL: metrics missing osnb wire requests" >&2; exit 1; }
grep -q '"backend": "poll"' "$WORK/metrics.out" || {
  echo "FAIL: daemon is not on the requested poll backend" >&2; exit 1; }

kill -TERM "$SERVED_PID"
trap - EXIT
wait "$SERVED_PID" || { echo "FAIL: daemon did not exit cleanly" >&2; exit 1; }
echo "serve binary smoke OK"
