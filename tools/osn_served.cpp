// osn-served — the trace-query daemon.
//
// Serves a directory of OSNT traces over the line-delimited JSON protocol
// (src/serve/protocol.hpp): `osn-analyze query` is the matching client.
// Binds loopback by default; --port 0 asks the kernel for a free port and
// --port-file publishes whichever port was bound (how scripted harnesses
// avoid port races). SIGTERM/SIGINT trigger a graceful drain: in-flight
// requests finish, idle connections are told "shutting_down", then the
// process exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/clock.hpp"
#include "serve/server.hpp"

namespace {

using namespace osn;

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(stderr,
               "osn-served — serve OSNT traces to osn-analyze query clients\n\n"
               "  osn-served --dir DIR [--host H] [--port N] [--port-file FILE]\n"
               "             [--workers N] [--max-inflight N] [--cache-mb N]\n"
               "             [--model-cache-mb N] [--deadline-ms N]\n"
               "             [--idle-timeout-ms N] [--poll-backend]\n\n"
               "  --dir DIR          directory of .osnt trace files (required)\n"
               "  --host H           bind address (default 127.0.0.1)\n"
               "  --port N           TCP port; 0 = kernel-assigned (default 0)\n"
               "  --port-file FILE   write the bound port to FILE once listening\n"
               "  --workers N        request worker threads (default 4)\n"
               "  --max-inflight N   connections served concurrently before the\n"
               "                     server sheds with 'overloaded' (default 32)\n"
               "  --cache-mb N       result cache budget in MiB (default 64)\n"
               "  --model-cache-mb N decoded-model cache budget in MiB (default 256)\n"
               "  --deadline-ms N    default per-request deadline (default none)\n"
               "  --idle-timeout-ms N  close connections idle this long\n"
               "                     (default: keep them forever)\n"
               "  --poll-backend     use the portable poll(2) readiness backend\n"
               "                     instead of epoll\n");
  return 2;
}

const char* arg_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "error: %s expects a value\n", argv[i]);
    std::exit(usage());
  }
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir") {
      options.dir = arg_value(argc, argv, i);
    } else if (arg == "--host") {
      options.host = arg_value(argc, argv, i);
    } else if (arg == "--port") {
      options.port = static_cast<std::uint16_t>(std::atoi(arg_value(argc, argv, i)));
    } else if (arg == "--port-file") {
      port_file = arg_value(argc, argv, i);
    } else if (arg == "--workers") {
      options.workers = static_cast<std::size_t>(std::atoll(arg_value(argc, argv, i)));
    } else if (arg == "--max-inflight") {
      options.max_inflight = static_cast<std::size_t>(std::atoll(arg_value(argc, argv, i)));
    } else if (arg == "--cache-mb") {
      options.result_cache_bytes =
          static_cast<std::uint64_t>(std::atoll(arg_value(argc, argv, i))) << 20;
    } else if (arg == "--model-cache-mb") {
      options.model_cache_bytes =
          static_cast<std::uint64_t>(std::atoll(arg_value(argc, argv, i))) << 20;
    } else if (arg == "--deadline-ms") {
      options.default_deadline =
          static_cast<osn::DurNs>(std::atoll(arg_value(argc, argv, i))) * osn::kNsPerMs;
    } else if (arg == "--idle-timeout-ms") {
      options.idle_timeout =
          static_cast<osn::DurNs>(std::atoll(arg_value(argc, argv, i))) * osn::kNsPerMs;
    } else if (arg == "--poll-backend") {
      options.use_poll_backend = true;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return usage();
    }
  }
  if (options.dir.empty()) {
    std::fprintf(stderr, "error: --dir is required\n");
    return usage();
  }

  serve::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: cannot listen on %s:%u: %s\n", options.host.c_str(),
                 options.port, error.c_str());
    return 1;
  }

  std::fprintf(stderr, "osn-served: serving %s on %s:%u (%zu workers, %s backend)\n",
               options.dir.c_str(), options.host.c_str(), server.port(),
               options.workers, server.backend());
  if (!port_file.empty()) {
    // The port file is the readiness signal for scripts: written (atomically
    // enough for a <6-byte file) only after listen() succeeded.
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  while (!g_stop) Deadline::after(100 * kNsPerMs).sleep_remaining();

  std::fprintf(stderr, "osn-served: draining (%llu requests served, %llu shed)\n",
               static_cast<unsigned long long>(server.metrics().requests()),
               static_cast<unsigned long long>(server.metrics().shed()));
  server.stop();
  return 0;
}
