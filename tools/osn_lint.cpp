// osn-lint: the repo's static analyzer (see DESIGN.md §11).
//
// Exit codes: 0 clean, 1 findings, 2 configuration error or --budget-ms
// exceeded. The check-static target and the StaticLint ctest run this over
// the whole tree; StaticLintPerf additionally asserts the full-repo run
// stays under its time budget.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint/driver.hpp"

namespace {

void usage(std::FILE* to) {
  std::fputs(
      "usage: osn-lint [--root DIR] [--rule NAME]... [--json]\n"
      "                [--budget-ms N] [--list-rules]\n"
      "\n"
      "Lints *.cpp/*.hpp under DIR/src and DIR/tools against the rule set\n"
      "described in DESIGN.md §11. Layering is read from DIR/tools/\n"
      "layering.txt. Suppress per line with `// osn-lint: allow(rule)`.\n"
      "\n"
      "  --root DIR      repo root to lint (default: .)\n"
      "  --rule NAME     run only this rule (repeatable)\n"
      "  --json          machine-readable output\n"
      "  --budget-ms N   fail (exit 2) if the run exceeds N milliseconds\n"
      "  --list-rules    print the rule names and summaries, then exit\n",
      to);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  osn::lint::Options opt;
  bool json = false;
  long budget_ms = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const auto& r : osn::lint::all_rules())
        std::printf("%-18s %s\n", r.name, r.summary);
      return 0;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
      continue;
    }
    if (arg == "--rule" && i + 1 < argc) {
      opt.rules.emplace_back(argv[++i]);
      continue;
    }
    if (arg == "--budget-ms" && i + 1 < argc) {
      budget_ms = std::strtol(argv[++i], nullptr, 10);
      continue;
    }
    std::fprintf(stderr, "osn-lint: unknown argument '%s'\n", arg.c_str());
    usage(stderr);
    return 2;
  }

  const auto start = std::chrono::steady_clock::now();
  const osn::lint::RunResult result = osn::lint::lint_tree(root, opt);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  if (json)
    std::fputs(osn::lint::to_json(result).c_str(), stdout);
  else
    std::fputs(osn::lint::to_human(result).c_str(), stdout);

  if (!result.errors.empty()) return 2;
  if (budget_ms >= 0 && elapsed > budget_ms) {
    std::fprintf(stderr, "osn-lint: run took %ldms, over the %ldms budget\n",
                 static_cast<long>(elapsed), budget_ms);
    return 2;
  }
  return result.findings.empty() ? 0 : 1;
}
