// osn-lint rule battery: every rule gets positive fixtures (seeded
// violations the analyzer must catch) and negative fixtures (idiomatic code,
// suppressions, and the lexer edge cases — raw strings, multi-line comments,
// preprocessor continuations — that defeated the retired regex linter).
// The final test self-lints the repository tree and asserts it is clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/driver.hpp"

namespace lint = osn::lint;

namespace {

/// Lints one in-memory file with a single rule enabled.
std::vector<lint::Finding> lint_one(const std::string& path,
                                    const std::string& content,
                                    const std::string& rule) {
  lint::Options opt;
  opt.rules = {rule};
  const lint::RunResult res =
      lint::lint_sources({lint::SourceFile{path, content}}, opt);
  EXPECT_TRUE(res.errors.empty()) << (res.errors.empty() ? "" : res.errors[0]);
  return res.findings;
}

bool has(const std::vector<lint::Finding>& fs, const std::string& rule,
         int line) {
  return std::any_of(fs.begin(), fs.end(), [&](const lint::Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

// ---------------------------------------------------------------------------
// bare-assert
// ---------------------------------------------------------------------------

TEST(BareAssert, FlagsAssertAndAbort) {
  const auto fs = lint_one("src/noise/x.cpp",
                           "void f(int x) {\n"
                           "  assert(x > 0);\n"
                           "  if (x < 0) std::abort();\n"
                           "}\n",
                           "bare-assert");
  EXPECT_TRUE(has(fs, "bare-assert", 2));
  EXPECT_TRUE(has(fs, "bare-assert", 3));
}

TEST(BareAssert, IgnoresProjectMacrosAndMembers) {
  const auto fs = lint_one("src/noise/x.cpp",
                           "void f(int x) {\n"
                           "  OSN_ASSERT(x > 0);\n"
                           "  OSN_DASSERT_MSG(x, \"m\");\n"
                           "  checker.assert(x);\n"
                           "  static_assert(sizeof(int) == 4);\n"
                           "}\n",
                           "bare-assert");
  EXPECT_TRUE(fs.empty());
}

TEST(BareAssert, IgnoresCommentsStringsAndRawStrings) {
  // Every construct here defeated line-regex linting at some point: the raw
  // string spans lines and contains `assert(`, as does the block comment.
  const auto fs = lint_one("src/noise/x.cpp",
                           "/* a block comment\n"
                           "   mentioning assert(x) spanning lines */\n"
                           "const char* kDoc = R\"doc(\n"
                           "  call assert(value) to crash\n"
                           ")doc\";\n"
                           "const char* kMsg = \"assert(1)\";\n",
                           "bare-assert");
  EXPECT_TRUE(fs.empty());
}

TEST(BareAssert, DigitSeparatorDoesNotOpenCharLiteral) {
  // `1'000'000` must not start a char literal that swallows the assert.
  const auto fs = lint_one("src/noise/x.cpp",
                           "int n = 1'000'000;\n"
                           "void f() { assert(n); }\n",
                           "bare-assert");
  EXPECT_TRUE(has(fs, "bare-assert", 2));
}

TEST(BareAssert, AllowSuppresses) {
  const auto fs = lint_one(
      "src/noise/x.cpp",
      "void f(int x) { assert(x); }  // osn-lint: allow(bare-assert) legacy\n",
      "bare-assert");
  EXPECT_TRUE(fs.empty());
}

TEST(BareAssert, MacroContinuationIsNotTokenized) {
  // Preprocessor logical lines (with `\` continuations) never reach the
  // token stream; macro bodies are the compiler's problem, not the linter's.
  const auto fs = lint_one("src/noise/x.cpp",
                           "#define CHECK_OR_DIE(x) \\\n"
                           "  assert(x)\n"
                           "void f() { OSN_ASSERT(1); }\n",
                           "bare-assert");
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// decode-throw
// ---------------------------------------------------------------------------

TEST(DecodeThrow, FlagsAssertsInDecodePaths) {
  const auto fs = lint_one("src/trace/osnt_reader.cpp",
                           "void decode_header(Cursor& c) {\n"
                           "  OSN_ASSERT(c.size() >= 8);\n"
                           "}\n"
                           "void OsntReader::parse(Cursor& c) {\n"
                           "  OSN_ASSERT_MSG(c.ok(), \"bad\");\n"
                           "}\n",
                           "decode-throw");
  EXPECT_TRUE(has(fs, "decode-throw", 2));
  EXPECT_TRUE(has(fs, "decode-throw", 5));
}

TEST(DecodeThrow, WriterSideFunctionsAreExempt) {
  // Writer-side contracts are caller API preconditions, not decoded input.
  // The regex linter could not tell these apart and needed allow() comments.
  const auto fs = lint_one("src/trace/trace_io.cpp",
                           "OsntStreamWriter::OsntStreamWriter(int n) {\n"
                           "  OSN_ASSERT_MSG(n >= 1, \"chunk\");\n"
                           "}\n"
                           "void put_varint(Buf& b, std::uint64_t v) {\n"
                           "  OSN_ASSERT(v < kMax);\n"
                           "}\n"
                           "void OsntStreamWriter::write_bytes(int n) {\n"
                           "  OSN_ASSERT(n >= 0);\n"
                           "}\n",
                           "decode-throw");
  EXPECT_TRUE(fs.empty());
}

TEST(DecodeThrow, OtherFilesAreExempt) {
  const auto fs = lint_one("src/noise/classify.cpp",
                           "void f() { OSN_ASSERT(1); }\n", "decode-throw");
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// unchecked-narrow
// ---------------------------------------------------------------------------

TEST(UncheckedNarrow, FlagsNarrowCastOfVarint) {
  const auto fs =
      lint_one("src/trace/trace_io.cpp",
               "void f(Cursor& c) {\n"
               "  auto a = static_cast<std::uint16_t>(get_varint(c));\n"
               "  auto b = static_cast<std::int32_t>(osnt::get_varint_u64(c));\n"
               "}\n",
               "unchecked-narrow");
  EXPECT_TRUE(has(fs, "unchecked-narrow", 2));
  EXPECT_TRUE(has(fs, "unchecked-narrow", 3));
}

TEST(UncheckedNarrow, WideCastsAndOtherOperandsPass) {
  const auto fs =
      lint_one("src/trace/trace_io.cpp",
               "void f(Cursor& c) {\n"
               "  auto a = static_cast<std::uint64_t>(get_varint(c));\n"
               "  auto b = static_cast<std::uint16_t>(c.flags());\n"
               "  auto d = trace::narrow<std::uint16_t>(get_varint(c));\n"
               "}\n",
               "unchecked-narrow");
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// wallclock
// ---------------------------------------------------------------------------

TEST(Wallclock, FlagsWallClockReadsInHotPath) {
  const auto fs = lint_one("src/tracebuf/probe.hpp",
                           "auto now() { return std::chrono::system_clock::now(); }\n"
                           "long secs() { return time(NULL); }\n"
                           "void tv(struct timeval* t) { gettimeofday(t, nullptr); }\n",
                           "wallclock");
  EXPECT_TRUE(has(fs, "wallclock", 1));
  EXPECT_TRUE(has(fs, "wallclock", 2));
  EXPECT_TRUE(has(fs, "wallclock", 3));
}

TEST(Wallclock, MonotonicAndMembersPass) {
  const auto fs = lint_one("src/tracebuf/probe.hpp",
                           "auto now() { return std::chrono::steady_clock::now(); }\n"
                           "void f(Rec& r, int x) { r.time(x); }\n",
                           "wallclock");
  EXPECT_TRUE(fs.empty());
}

TEST(Wallclock, OutsideHotPathPasses) {
  const auto fs = lint_one("src/export/csv.cpp",
                           "auto t = std::chrono::system_clock::now();\n",
                           "wallclock");
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// query-pushdown
// ---------------------------------------------------------------------------

TEST(QueryPushdown, FlagsDirectReadsOutsideQueryLayer) {
  const auto fs = lint_one("src/serve/handlers.cpp",
                           "void f(trace::OsntReader& r) {\n"
                           "  auto w = r.read_window(0, 10);\n"
                           "  auto j = index_summary_json(r);\n"
                           "}\n",
                           "query-pushdown");
  EXPECT_TRUE(has(fs, "query-pushdown", 2));
  EXPECT_TRUE(has(fs, "query-pushdown", 3));
}

TEST(QueryPushdown, QueryLayerAndLookalikesPass) {
  EXPECT_TRUE(lint_one("src/query/engine.cpp",
                       "void f(trace::OsntReader& r) { r.read_window(0, 1); }\n",
                       "query-pushdown")
                  .empty());
  EXPECT_TRUE(lint_one("src/serve/handlers.cpp",
                       "void f(P& p) { p.read_window_spec(0); }\n",
                       "query-pushdown")
                  .empty());
}

// ---------------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------------

constexpr const char* kSpec =
    "common:\n"
    "net: common\n"
    "serve: common net\n";

std::vector<lint::Finding> lint_layered(const std::string& path,
                                        const std::string& content,
                                        const char* spec = kSpec) {
  lint::Options opt;
  opt.rules = {"layering"};
  opt.layering_text = spec;
  opt.have_layering = true;
  const lint::RunResult res =
      lint::lint_sources({lint::SourceFile{path, content}}, opt);
  EXPECT_TRUE(res.errors.empty());
  return res.findings;
}

TEST(Layering, FlagsUndeclaredEdge) {
  // net -> serve: the edge the old hard-coded net-layering regex checked.
  const auto fs = lint_layered("src/net/event_loop.cpp",
                               "#include \"serve/handlers.hpp\"\n");
  EXPECT_TRUE(has(fs, "layering", 1));
}

TEST(Layering, FlagsEdgeTheRegexNeverChecked) {
  // serve -> net is not in this spec. The regex linter only ever checked
  // includes *from* src/net/; a serve-side violation sailed through it.
  const auto fs = lint_layered("src/serve/server.cpp",
                               "#include \"net/poller.hpp\"\n",
                               "common:\nnet: common\nserve: common\n");
  EXPECT_TRUE(has(fs, "layering", 1));
}

TEST(Layering, FlagsUndeclaredSubsystemTarget) {
  const auto fs = lint_layered("src/net/event_loop.cpp",
                               "#include \"mystery/box.hpp\"\n");
  EXPECT_TRUE(has(fs, "layering", 1));
}

TEST(Layering, DeclaredEdgesSelfIncludesAndSystemHeadersPass) {
  const auto fs = lint_layered("src/serve/server.cpp",
                               "#include <vector>\n"
                               "#include \"net/poller.hpp\"\n"
                               "#include \"serve/catalog.hpp\"\n"
                               "#include \"common/types.hpp\"\n");
  EXPECT_TRUE(fs.empty());
}

TEST(Layering, CommentedIncludeIsNotAnInclude) {
  const auto fs = lint_layered("src/net/event_loop.cpp",
                               "// #include \"serve/handlers.hpp\"\n"
                               "/* #include \"serve/handlers.hpp\" */\n");
  EXPECT_TRUE(fs.empty());
}

TEST(Layering, SpecValidationRejectsBadGraphs) {
  EXPECT_FALSE(lint::parse_layer_spec("a: b\n").ok());          // undeclared
  EXPECT_FALSE(lint::parse_layer_spec("a: b\nb: a\n").ok());    // cycle
  EXPECT_FALSE(lint::parse_layer_spec("a:\na:\n").ok());        // duplicate
  EXPECT_FALSE(lint::parse_layer_spec("garbage line\n").ok());  // syntax
  EXPECT_TRUE(lint::parse_layer_spec("# c\n\na:\nb: a\n").ok());
}

// ---------------------------------------------------------------------------
// raw-socket
// ---------------------------------------------------------------------------

TEST(RawSocket, FlagsGlobalSyscallsOutsideSocketLayer) {
  const auto fs = lint_one("src/serve/server.cpp",
                           "void f(int fd, const char* p, size_t n) {\n"
                           "  ::send(fd, p, n, 0);\n"
                           "  ::accept(fd, nullptr, nullptr);\n"
                           "}\n",
                           "raw-socket");
  EXPECT_TRUE(has(fs, "raw-socket", 2));
  EXPECT_TRUE(has(fs, "raw-socket", 3));
}

TEST(RawSocket, MemberDefinitionsAreNotSyscalls) {
  // `EventLoop::send(...)` is a method definition, not ::send(2). The regex
  // version matched any `::send(` and could not make this distinction.
  const auto fs = lint_one("src/serve/push.cpp",
                           "void Pusher::send(std::string frame) {\n"
                           "  queue_.push_back(std::move(frame));\n"
                           "}\n"
                           "void f(TcpStream& s) { s.send_all(\"x\"); }\n",
                           "raw-socket");
  EXPECT_TRUE(fs.empty());
}

TEST(RawSocket, SocketLayerIsExempt) {
  EXPECT_TRUE(lint_one("src/common/socket.cpp",
                       "void f(int fd) { ::send(fd, 0, 0, 0); }\n",
                       "raw-socket")
                  .empty());
  EXPECT_TRUE(lint_one("src/net/poller.cpp",
                       "void f(int fd) { ::poll(nullptr, 0, 0); }\n",
                       "raw-socket")
                  .empty());
}

// ---------------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------------

TEST(HotPathAlloc, FlagsAllocationAndGrowth) {
  const auto fs = lint_one("src/tracebuf/probe.hpp",
                           "void f(std::vector<int>& v, int n) {\n"
                           "  auto* p = new int[n];\n"
                           "  v.push_back(n);\n"
                           "  auto u = std::make_unique<int>(n);\n"
                           "  void* m = malloc(n);\n"
                           "}\n",
                           "hot-path-alloc");
  EXPECT_TRUE(has(fs, "hot-path-alloc", 2));
  EXPECT_TRUE(has(fs, "hot-path-alloc", 3));
  EXPECT_TRUE(has(fs, "hot-path-alloc", 4));
  EXPECT_TRUE(has(fs, "hot-path-alloc", 5));
}

TEST(HotPathAlloc, AllowAndNonHotFilesPass) {
  EXPECT_TRUE(lint_one("src/tracebuf/probe.hpp",
                       "void setup(std::vector<int>& v, int n) {\n"
                       "  v.reserve(n);  // osn-lint: allow(hot-path-alloc) setup\n"
                       "}\n",
                       "hot-path-alloc")
                  .empty());
  EXPECT_TRUE(lint_one("src/trace/sink.cpp",
                       "void f(std::vector<int>& v) { v.push_back(1); }\n",
                       "hot-path-alloc")
                  .empty());
}

TEST(HotPathAlloc, MentionsInCommentsAndStringsPass) {
  const auto fs = lint_one("src/tracebuf/probe.hpp",
                           "// new allocations are forbidden; malloc( too\n"
                           "const char* kDoc = R\"(push_back( malloc( new )\";\n",
                           "hot-path-alloc");
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// hot-path-syscall
// ---------------------------------------------------------------------------

TEST(HotPathSyscall, FlagsBlockingCalls) {
  const auto fs = lint_one("src/tracebuf/probe.hpp",
                           "void f(int fd, char* b, size_t n, FILE* fp) {\n"
                           "  ::read(fd, b, n);\n"
                           "  fwrite(b, 1, n, fp);\n"
                           "  std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
                           "}\n",
                           "hot-path-syscall");
  EXPECT_TRUE(has(fs, "hot-path-syscall", 2));
  EXPECT_TRUE(has(fs, "hot-path-syscall", 3));
  EXPECT_TRUE(has(fs, "hot-path-syscall", 4));
}

TEST(HotPathSyscall, MembersAllowsAndNonHotFilesPass) {
  EXPECT_TRUE(lint_one("src/tracebuf/probe.hpp",
                       "size_t f(Ring& r, std::span<Rec> out) {\n"
                       "  return r.read(out);\n"
                       "}\n"
                       "void idle() {\n"
                       "  std::this_thread::yield();  // osn-lint: allow(hot-path-syscall) daemon\n"
                       "}\n",
                       "hot-path-syscall")
                  .empty());
  EXPECT_TRUE(lint_one("src/common/socket.cpp",
                       "void f(int fd, char* b, size_t n) { ::read(fd, b, n); }\n",
                       "hot-path-syscall")
                  .empty());
}

// ---------------------------------------------------------------------------
// lock-scope
// ---------------------------------------------------------------------------

TEST(LockScope, FlagsBlockingCallsUnderLock) {
  const auto fs = lint_one("src/serve/push.cpp",
                           "void f(TcpStream& s, const std::string& d) {\n"
                           "  std::lock_guard<std::mutex> g(mu_);\n"
                           "  s.send_all(d);\n"
                           "}\n"
                           "void g(int fd) {\n"
                           "  std::unique_lock<std::mutex> l(this->mu_);\n"
                           "  ::send(fd, nullptr, 0, 0);\n"
                           "}\n",
                           "lock-scope");
  EXPECT_TRUE(has(fs, "lock-scope", 3));
  EXPECT_TRUE(has(fs, "lock-scope", 7));
}

TEST(LockScope, FlagsDecodeUnderScopedLock) {
  const auto fs = lint_one("src/serve/catalog.cpp",
                           "void f(Reader& r, const std::string& p) {\n"
                           "  std::scoped_lock l{mutex_};\n"
                           "  auto t = read_trace_file(p);\n"
                           "}\n",
                           "lock-scope");
  EXPECT_TRUE(has(fs, "lock-scope", 3));
}

TEST(LockScope, CallOutsideCriticalSectionPasses) {
  const auto fs = lint_one("src/serve/push.cpp",
                           "void f(TcpStream& s, const std::string& d) {\n"
                           "  {\n"
                           "    std::lock_guard<std::mutex> g(mu_);\n"
                           "    pending_ += 1;\n"
                           "  }\n"
                           "  s.send_all(d);\n"
                           "}\n"
                           "void g(TcpStream& s, const std::string& d) {\n"
                           "  s.send_all(d);\n"
                           "  std::lock_guard<std::mutex> lock(mu_);\n"
                           "  done_ = true;\n"
                           "}\n",
                           "lock-scope");
  EXPECT_TRUE(fs.empty());
}

TEST(LockScope, DeclarationsAndOtherSubsystemsPass) {
  // A member declaration is not a call site (no enclosing function body).
  EXPECT_TRUE(lint_one("src/net/connection.hpp",
                       "class TcpStream {\n"
                       "  bool send_all(const std::string& data);\n"
                       "};\n",
                       "lock-scope")
                  .empty());
  EXPECT_TRUE(lint_one("src/host/sampler.cpp",
                       "void f(TcpStream& s) {\n"
                       "  std::lock_guard<std::mutex> g(mu_);\n"
                       "  s.send_all(\"x\");\n"
                       "}\n",
                       "lock-scope")
                  .empty());
}

// ---------------------------------------------------------------------------
// guarded-by
// ---------------------------------------------------------------------------

constexpr const char* kGuardHpp =
    "#include \"common/annotations.hpp\"\n"
    "class Mailbox {\n"
    " public:\n"
    "  Mailbox() : queue_(), other_mu_() {}\n"
    "  void post(int v);\n"
    "  void misuse(int v);\n"
    " private:\n"
    "  std::mutex mu_;\n"
    "  std::mutex other_mu_;\n"
    "  std::vector<int> queue_ OSN_GUARDED_BY(mu_);\n"
    "};\n";

std::vector<lint::Finding> lint_guarded(const std::string& cpp) {
  lint::Options opt;
  opt.rules = {"guarded-by"};
  const lint::RunResult res = lint::lint_sources(
      {lint::SourceFile{"src/net/mailbox.hpp", kGuardHpp},
       lint::SourceFile{"src/net/mailbox.cpp", cpp}},
      opt);
  EXPECT_TRUE(res.errors.empty());
  return res.findings;
}

TEST(GuardedBy, FlagsUnlockedAccess) {
  const auto fs = lint_guarded(
      "void Mailbox::misuse(int v) {\n"
      "  queue_.push_back(v);\n"
      "}\n");
  EXPECT_TRUE(has(fs, "guarded-by", 2));
}

TEST(GuardedBy, FlagsAccessUnderWrongMutex) {
  // Holding *a* lock is not holding *the* lock — undetectable by regex,
  // and by eye in review more often than anyone admits.
  const auto fs = lint_guarded(
      "void Mailbox::misuse(int v) {\n"
      "  std::lock_guard<std::mutex> g(other_mu_);\n"
      "  queue_.push_back(v);\n"
      "}\n");
  EXPECT_TRUE(has(fs, "guarded-by", 3));
}

TEST(GuardedBy, AccessUnderRightMutexPasses) {
  const auto fs = lint_guarded(
      "void Mailbox::post(int v) {\n"
      "  std::lock_guard<std::mutex> g(mu_);\n"
      "  queue_.push_back(v);\n"
      "}\n");
  EXPECT_TRUE(fs.empty());
}

TEST(GuardedBy, ConstructionSitesAreExempt) {
  // The declaration itself and member-initializer lists are construction,
  // not sharing; neither should need a lock.
  const auto fs = lint_guarded(
      "Mailbox make() { return Mailbox(); }\n");
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// Driver-level behavior
// ---------------------------------------------------------------------------

TEST(Driver, UnknownRuleIsAnError) {
  lint::Options opt;
  opt.rules = {"no-such-rule"};
  const lint::RunResult res =
      lint::lint_sources({lint::SourceFile{"src/noise/x.cpp", ""}}, opt);
  ASSERT_EQ(res.errors.size(), 1u);
}

TEST(Driver, MultiRuleAllowOnOneLine) {
  lint::Options opt;
  opt.rules = {"hot-path-alloc", "hot-path-syscall"};
  const lint::RunResult res = lint::lint_sources(
      {lint::SourceFile{
          "src/tracebuf/probe.hpp",
          "void drain(std::vector<int>& v, FILE* f) {\n"
          "  v.push_back(fgetc(f) + fread(nullptr, 0, 0, f) ? 1 : 0);  "
          "// osn-lint: allow(hot-path-alloc, hot-path-syscall) drain\n"
          "}\n"}},
      opt);
  EXPECT_TRUE(res.findings.empty());
}

TEST(Driver, FindingsAreSortedAndDeduplicated) {
  lint::Options opt;
  opt.rules = {"hot-path-alloc"};
  const lint::RunResult res = lint::lint_sources(
      {lint::SourceFile{"src/tracebuf/b.hpp", "void f(V& v) { v.resize(1); }\n"},
       lint::SourceFile{"src/tracebuf/a.hpp", "void f(V& v) { v.resize(1); }\n"}},
      opt);
  ASSERT_EQ(res.findings.size(), 2u);
  EXPECT_EQ(res.findings[0].file, "src/tracebuf/a.hpp");
  EXPECT_EQ(res.findings[1].file, "src/tracebuf/b.hpp");
}

TEST(Driver, RuleRegistryIsComplete) {
  EXPECT_EQ(lint::all_rules().size(), 11u);
  EXPECT_TRUE(lint::known_rule("guarded-by"));
  EXPECT_FALSE(lint::known_rule("net-layering"));  // renamed to `layering`
}

// ---------------------------------------------------------------------------
// Self-lint: the repository itself must be clean, and the layering spec must
// describe the tree as it exists.
// ---------------------------------------------------------------------------

TEST(SelfLint, RepositoryIsClean) {
  const lint::RunResult res =
      lint::lint_tree(OSN_LINT_REPO_ROOT, lint::Options{});
  for (const std::string& e : res.errors) ADD_FAILURE() << e;
  for (const lint::Finding& f : res.findings)
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  EXPECT_GT(res.files, 100);  // sanity: the walk actually found the tree
}

}  // namespace
