#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/compare.hpp"

namespace osn::stats {
namespace {

TEST(Pearson, PerfectPositive) {
  EXPECT_NEAR(pearson_correlation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  EXPECT_NEAR(pearson_correlation({1, 2, 3, 4}, {4, 3, 2, 1}), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  EXPECT_EQ(pearson_correlation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Pearson, IndependentNoiseNearZero) {
  Xoshiro256 rng(1);
  std::vector<double> a, b;
  for (int i = 0; i < 20'000; ++i) {
    a.push_back(rng.uniform01());
    b.push_back(rng.uniform01());
  }
  EXPECT_NEAR(pearson_correlation(a, b), 0.0, 0.03);
}

TEST(Pearson, MismatchedSizesDie) {
  EXPECT_DEATH(pearson_correlation({1, 2}, {1}), "paired");
}

TEST(KsDistance, IdenticalSamplesZero) {
  std::vector<double> a{1, 2, 3, 4, 5};
  EXPECT_NEAR(ks_distance(a, a), 0.0, 0.21);  // step-function granularity
}

TEST(KsDistance, DisjointSamplesOne) {
  EXPECT_NEAR(ks_distance({1, 2, 3}, {10, 20, 30}), 1.0, 1e-12);
}

TEST(KsDistance, SameDistributionSmall) {
  Xoshiro256 rng(2);
  std::vector<double> a, b;
  for (int i = 0; i < 10'000; ++i) {
    a.push_back(rng.uniform01());
    b.push_back(rng.uniform01());
  }
  EXPECT_LT(ks_distance(a, b), 0.03);
}

TEST(MeanAbsDifference, Basic) {
  EXPECT_DOUBLE_EQ(mean_abs_difference({1, 2, 3}, {2, 2, 5}), (1 + 0 + 2) / 3.0);
}

}  // namespace
}  // namespace osn::stats
