// EventLoop tests against a toy echo protocol, run over BOTH readiness
// backends (epoll and the poll(2) fallback) via the value-parameterized
// fixture. The handler echoes each frame back with an "echo:" prefix —
// enough protocol to exercise accept, dispatch, pipelining, shed, idle
// reaping, drain goodbyes, timers, and the worker-facing thread contract
// without dragging in the serve layer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/socket.hpp"
#include "net/codec.hpp"
#include "net/event_loop.hpp"

namespace osn::net {
namespace {

/// Echoes every frame back ("echo:" + payload) from a worker thread,
/// mimicking how the serve layer answers via send()+finish() off the run
/// thread. Workers are tracked so tests can honor the documented shutdown
/// contract: join them between drain() and stop(). admit_limit caps
/// concurrent admissions to test shed.
class EchoHandler : public Handler {
 public:
  explicit EchoHandler(std::size_t admit_limit = SIZE_MAX)
      : admit_limit_(admit_limit) {}

  void attach(EventLoop* loop) { loop_ = loop; }

  bool on_accept(std::uint64_t) override {
    return admitted_.fetch_add(1) < admit_limit_ ? true : (admitted_--, false);
  }

  void on_frames(std::uint64_t id, CodecKind, std::vector<std::string> frames) override {
    EventLoop* loop = loop_;
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers_.emplace_back([loop, id, frames = std::move(frames)] {
      for (const std::string& f : frames) loop->send(id, "echo:" + f);
      loop->finish(id);
    });
  }

  std::string control_frame(CodecKind, Control which) override {
    return which == Control::kOverloaded ? "ctl:overloaded" : "ctl:shutting_down";
  }

  void on_closed(std::uint64_t, bool admitted) override {
    if (admitted) admitted_--;
    closed_++;
  }

  /// Joins every worker spawned so far (looping: a batch dispatched
  /// concurrently with drain can still add one).
  void join_workers() {
    for (;;) {
      std::vector<std::thread> batch;
      {
        std::lock_guard<std::mutex> lock(workers_mu_);
        batch.swap(workers_);
      }
      if (batch.empty()) return;
      for (std::thread& t : batch) t.join();
    }
  }

  std::atomic<std::size_t> admitted_{0};
  std::atomic<std::size_t> closed_{0};

 private:
  std::size_t admit_limit_;
  EventLoop* loop_ = nullptr;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
};

/// Param: use the poll(2) backend instead of epoll.
class EventLoopTest : public ::testing::TestWithParam<bool> {
 protected:
  void start(LoopOptions options = {}, std::size_t admit_limit = SIZE_MAX) {
    options.use_poll = GetParam();
    handler_ = std::make_unique<EchoHandler>(admit_limit);
    loop_ = std::make_unique<EventLoop>(options, handler_.get());
    handler_->attach(loop_.get());
    std::string error;
    TcpListener listener = TcpListener::listen("127.0.0.1", 0, 64, &error);
    ASSERT_TRUE(listener.ok()) << error;
    ASSERT_TRUE(loop_->start(std::move(listener), &error)) << error;
  }

  void TearDown() override {
    if (!loop_) return;
    // The documented shutdown order: drain, join workers (their responses
    // must still find a live loop), then stop.
    loop_->drain();
    handler_->join_workers();
    loop_->stop();
  }

  TcpStream connect() {
    std::string error;
    TcpStream s = TcpStream::connect("127.0.0.1", loop_->port(),
                                     Deadline::after(5 * kNsPerSec), &error);
    EXPECT_TRUE(s.ok()) << error;
    return s;
  }

  std::unique_ptr<EchoHandler> handler_;
  std::unique_ptr<EventLoop> loop_;
};

TEST_P(EventLoopTest, ReportsItsBackend) {
  start();
  EXPECT_STREQ(loop_->backend(), GetParam() ? "poll" : "epoll");
}

TEST_P(EventLoopTest, EchoesOneLineFrame) {
  start();
  TcpStream s = connect();
  const Deadline deadline = Deadline::after(5 * kNsPerSec);
  ASSERT_TRUE(s.send_all("hello\n", deadline));
  std::optional<std::string> reply = s.recv_line(deadline);
  ASSERT_TRUE(reply);
  EXPECT_EQ(*reply, "echo:hello");
}

TEST_P(EventLoopTest, EchoesOsnbFramesAfterPreamble) {
  start();
  TcpStream s = connect();
  const Deadline deadline = Deadline::after(5 * kNsPerSec);
  const Codec& osnb = codec_for(CodecKind::kOsnb);
  std::string wire(kOsnbPreamble, kOsnbPreambleLen);
  wire += osnb.encode("ping");
  ASSERT_TRUE(s.send_all(wire, deadline));
  std::string rbuf;
  std::string frame;
  std::string error;
  while (osnb.decode(rbuf, 1 << 20, frame, error) != Codec::Result::kFrame)
    ASSERT_TRUE(s.recv_chunk(rbuf, deadline));
  EXPECT_EQ(frame, "echo:ping");
}

TEST_P(EventLoopTest, ServesPipelinedFramesSentAsOneWrite) {
  // All three frames land in one TCP segment; the loop must serve the ones
  // buffered past the dispatched batch without another readiness event.
  start();
  TcpStream s = connect();
  const Deadline deadline = Deadline::after(5 * kNsPerSec);
  ASSERT_TRUE(s.send_all("a\nb\nc\n", deadline));
  for (const char* want : {"echo:a", "echo:b", "echo:c"}) {
    std::optional<std::string> reply = s.recv_line(deadline);
    ASSERT_TRUE(reply);
    EXPECT_EQ(*reply, want);
  }
  const LoopStats stats = loop_->stats();
  EXPECT_EQ(stats.frames_in, 3u);
  EXPECT_EQ(stats.frames_out, 3u);
}

TEST_P(EventLoopTest, ManySequentialRoundTripsOnOneConnection) {
  start();
  TcpStream s = connect();
  const Deadline deadline = Deadline::after(10 * kNsPerSec);
  for (int i = 0; i < 50; ++i) {
    const std::string msg = "msg" + std::to_string(i);
    ASSERT_TRUE(s.send_all(msg + "\n", deadline));
    std::optional<std::string> reply = s.recv_line(deadline);
    ASSERT_TRUE(reply);
    EXPECT_EQ(*reply, "echo:" + msg);
  }
}

TEST_P(EventLoopTest, ShedConnectionGetsOverloadedControlFrame) {
  start({}, /*admit_limit=*/1);
  TcpStream first = connect();
  const Deadline deadline = Deadline::after(5 * kNsPerSec);
  // Prove the first connection is admitted (and keep it open).
  ASSERT_TRUE(first.send_all("hi\n", deadline));
  ASSERT_TRUE(first.recv_line(deadline));

  TcpStream second = connect();
  ASSERT_TRUE(second.send_all("hi\n", deadline));
  std::optional<std::string> reply = second.recv_line(deadline);
  ASSERT_TRUE(reply);
  EXPECT_EQ(*reply, "ctl:overloaded");
  // The shed connection is then closed by the server.
  EXPECT_FALSE(second.recv_line(deadline));
  EXPECT_FALSE(second.ok());
}

TEST_P(EventLoopTest, FramingViolationClosesTheConnection) {
  LoopOptions options;
  options.max_frame_bytes = 64;
  start(options);
  TcpStream s = connect();
  const Deadline deadline = Deadline::after(5 * kNsPerSec);
  ASSERT_TRUE(s.send_all(std::string(200, 'x'), deadline));  // overlong, no '\n'
  EXPECT_FALSE(s.recv_line(deadline));
  EXPECT_FALSE(s.ok()) << "server must close on framing violation";
  // Poll until the loop registers the close (it races the client's read).
  const Deadline settle = Deadline::after(5 * kNsPerSec);
  while (loop_->stats().codec_errors == 0 && !settle.expired())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(loop_->stats().codec_errors, 1u);
}

TEST_P(EventLoopTest, IdleConnectionsAreReaped) {
  LoopOptions options;
  options.idle_timeout = 50 * kNsPerMs;
  start(options);
  TcpStream s = connect();
  const Deadline deadline = Deadline::after(10 * kNsPerSec);
  EXPECT_FALSE(s.recv_line(deadline)) << "reaper should close the idle conn";
  const Deadline settle = Deadline::after(5 * kNsPerSec);
  while (loop_->stats().idle_timeouts == 0 && !settle.expired())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(loop_->stats().idle_timeouts, 1u);
}

TEST_P(EventLoopTest, DrainSendsGoodbyeToIdleConnections) {
  start();
  TcpStream s = connect();
  const Deadline deadline = Deadline::after(5 * kNsPerSec);
  // Round-trip once so the connection is fully registered and idle.
  ASSERT_TRUE(s.send_all("hi\n", deadline));
  ASSERT_TRUE(s.recv_line(deadline));
  loop_->drain();
  std::optional<std::string> reply = s.recv_line(deadline);
  ASSERT_TRUE(reply);
  EXPECT_EQ(*reply, "ctl:shutting_down");
  EXPECT_FALSE(s.recv_line(deadline)) << "goodbye is followed by close";
}

TEST_P(EventLoopTest, TimersFireInOrderOnTheLoopThread) {
  start();
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> fired;
  loop_->add_timer(40 * kNsPerMs, [&] {
    std::lock_guard<std::mutex> lock(mu);
    fired.push_back(2);
    cv.notify_all();
  });
  loop_->add_timer(5 * kNsPerMs, [&] {
    std::lock_guard<std::mutex> lock(mu);
    fired.push_back(1);
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                          [&] { return fired.size() == 2; }));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST_P(EventLoopTest, StatsTrackConnectionLifecycle) {
  start();
  {
    TcpStream s = connect();
    const Deadline deadline = Deadline::after(5 * kNsPerSec);
    ASSERT_TRUE(s.send_all("hi\n", deadline));
    ASSERT_TRUE(s.recv_line(deadline));
    const LoopStats mid = loop_->stats();
    EXPECT_EQ(mid.accepted, 1u);
    EXPECT_EQ(mid.open, 1u);
    EXPECT_GE(mid.write_queue_hwm, std::string("echo:hi").size());
  }
  const Deadline settle = Deadline::after(5 * kNsPerSec);
  while (loop_->stats().closed == 0 && !settle.expired())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const LoopStats after = loop_->stats();
  EXPECT_EQ(after.closed, 1u);
  EXPECT_EQ(after.open, 0u);
  EXPECT_EQ(handler_->closed_.load(), 1u);
}

TEST_P(EventLoopTest, StopWithNoConnectionsIsPrompt) {
  start();
  loop_->stop();
  loop_.reset();  // TearDown would double-stop; exercise idempotence anyway
}

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "Poll" : "Epoll";
                         });

}  // namespace
}  // namespace osn::net
