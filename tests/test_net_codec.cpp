// Framing-codec unit tests: varint primitives, line/OSNB round-trips,
// codec detection, and the truncation/garbage battery — every proper prefix
// of a valid frame must decode as "need more" (never an error, never a
// frame) and mangled bytes must fail cleanly instead of hanging or
// ballooning memory.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/varint.hpp"
#include "net/codec.hpp"

namespace osn::net {
namespace {

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

TEST(Varint, RoundTripsRepresentativeValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  ~0ull};
  for (const std::uint64_t v : values) {
    std::string buf;
    varint_append(buf, v);
    std::size_t pos = 0;
    std::uint64_t out = 0;
    EXPECT_EQ(varint_decode(buf, pos, out), VarintStatus::kOk);
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, EveryPrefixNeedsMore) {
  std::string buf;
  varint_append(buf, ~0ull);  // 10 bytes, the longest encoding
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    const std::string prefix = buf.substr(0, cut);
    std::size_t pos = 0;
    std::uint64_t out = 0;
    EXPECT_EQ(varint_decode(prefix, pos, out), VarintStatus::kNeedMore);
    EXPECT_EQ(pos, 0u) << "pos must not advance on kNeedMore";
  }
}

TEST(Varint, OverlongAndOverflowingEncodingsAreMalformed) {
  // 10 continuation bytes: no terminator within the 64-bit budget.
  const std::string eleven(11, '\x80');
  std::size_t pos = 0;
  std::uint64_t out = 0;
  EXPECT_EQ(varint_decode(eleven, pos, out), VarintStatus::kMalformed);

  // Tenth byte carries bits beyond 2^64.
  std::string overflow(9, '\x80');
  overflow += '\x02';  // bit 65
  pos = 0;
  EXPECT_EQ(varint_decode(overflow, pos, out), VarintStatus::kMalformed);
}

// ---------------------------------------------------------------------------
// Line codec
// ---------------------------------------------------------------------------

TEST(Codec, LineEncodeIsPayloadPlusNewline) {
  const Codec& line = codec_for(CodecKind::kLine);
  EXPECT_EQ(line.encode("{\"id\":1}"), "{\"id\":1}\n");
  EXPECT_EQ(line.encode(""), "\n");
}

TEST(Codec, LineDecodeSplitsAtNewlineAndPreservesRemainder) {
  const Codec& line = codec_for(CodecKind::kLine);
  std::string buf = "first\nsecond\npartial";
  std::string frame;
  std::string error;
  ASSERT_EQ(line.decode(buf, 1 << 20, frame, error), Codec::Result::kFrame);
  EXPECT_EQ(frame, "first");
  ASSERT_EQ(line.decode(buf, 1 << 20, frame, error), Codec::Result::kFrame);
  EXPECT_EQ(frame, "second");
  EXPECT_EQ(line.decode(buf, 1 << 20, frame, error), Codec::Result::kNeedMore);
  EXPECT_EQ(buf, "partial");
}

TEST(Codec, LineOverlongFrameIsAnErrorNotAnAllocation) {
  const Codec& line = codec_for(CodecKind::kLine);
  std::string frame;
  std::string error;
  // Complete line over the limit.
  std::string buf = std::string(100, 'x') + "\n";
  EXPECT_EQ(line.decode(buf, /*max_frame=*/64, frame, error), Codec::Result::kError);
  // Unterminated line already past the limit: reject instead of buffering on.
  buf = std::string(100, 'x');
  error.clear();
  EXPECT_EQ(line.decode(buf, /*max_frame=*/64, frame, error), Codec::Result::kError);
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// OSNB codec
// ---------------------------------------------------------------------------

TEST(Codec, OsnbRoundTripsFramesOfManySizes) {
  const Codec& osnb = codec_for(CodecKind::kOsnb);
  Xoshiro256 rng(42);
  for (const std::size_t size : {0u, 1u, 127u, 128u, 300u, 70000u}) {
    std::string payload;
    payload.reserve(size);
    for (std::size_t i = 0; i < size; ++i)
      payload += static_cast<char>(rng.next() & 0xFF);  // binary-safe, \n included
    std::string buf = osnb.encode(payload);
    std::string frame;
    std::string error;
    ASSERT_EQ(osnb.decode(buf, 1 << 20, frame, error), Codec::Result::kFrame)
        << "size " << size;
    EXPECT_EQ(frame, payload);
    EXPECT_TRUE(buf.empty());
  }
}

TEST(Codec, OsnbDecodesBackToBackFrames) {
  const Codec& osnb = codec_for(CodecKind::kOsnb);
  std::string buf = osnb.encode("one") + osnb.encode("") + osnb.encode("three");
  std::string frame;
  std::string error;
  ASSERT_EQ(osnb.decode(buf, 1 << 20, frame, error), Codec::Result::kFrame);
  EXPECT_EQ(frame, "one");
  ASSERT_EQ(osnb.decode(buf, 1 << 20, frame, error), Codec::Result::kFrame);
  EXPECT_EQ(frame, "");
  ASSERT_EQ(osnb.decode(buf, 1 << 20, frame, error), Codec::Result::kFrame);
  EXPECT_EQ(frame, "three");
  EXPECT_EQ(osnb.decode(buf, 1 << 20, frame, error), Codec::Result::kNeedMore);
}

TEST(Codec, OsnbEveryTruncationNeedsMoreNeverErrorNeverFrame) {
  // The fuzz battery's core property: a proper prefix of a valid frame is
  // always "wait for more bytes" — any other verdict would corrupt or kill
  // a connection mid-delivery.
  const Codec& osnb = codec_for(CodecKind::kOsnb);
  const std::string wire = osnb.encode(std::string(300, 'q'));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    std::string buf = wire.substr(0, cut);
    std::string frame;
    std::string error;
    EXPECT_EQ(osnb.decode(buf, 1 << 20, frame, error), Codec::Result::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(buf.size(), cut) << "kNeedMore must not consume bytes";
  }
}

TEST(Codec, OsnbRejectsOversizeFrameBeforeBufferingIt) {
  const Codec& osnb = codec_for(CodecKind::kOsnb);
  // Header claims 1 GiB; only the header has arrived. The decoder must
  // reject on the claim, not wait for a gigabyte that may never come.
  std::string buf;
  varint_append(buf, 1ull << 30);
  std::string frame;
  std::string error;
  EXPECT_EQ(osnb.decode(buf, /*max_frame=*/1 << 20, frame, error),
            Codec::Result::kError);
  EXPECT_FALSE(error.empty());
}

TEST(Codec, OsnbRejectsMalformedLengthVarint) {
  const Codec& osnb = codec_for(CodecKind::kOsnb);
  std::string buf(11, '\x80');  // unterminated varint
  std::string frame;
  std::string error;
  EXPECT_EQ(osnb.decode(buf, 1 << 20, frame, error), Codec::Result::kError);
}

TEST(Codec, OsnbGarbageFuzzNeverFramesGarbageAsSuccess) {
  // Random bytes must resolve to kFrame (with a plausible short length
  // prefix), kNeedMore, or kError — and repeated decoding must terminate.
  const Codec& osnb = codec_for(CodecKind::kOsnb);
  Xoshiro256 rng(7);
  for (int round = 0; round < 200; ++round) {
    std::string buf;
    const std::size_t n = 1 + rng.next() % 64;
    for (std::size_t i = 0; i < n; ++i) buf += static_cast<char>(rng.next() & 0xFF);
    std::string frame;
    std::string error;
    for (int step = 0; step < 100; ++step) {
      const std::size_t before = buf.size();
      const Codec::Result r = osnb.decode(buf, /*max_frame=*/4096, frame, error);
      if (r != Codec::Result::kFrame) break;  // kNeedMore/kError: done, no hang
      EXPECT_LT(buf.size(), before) << "kFrame must consume bytes";
    }
  }
}

// ---------------------------------------------------------------------------
// Codec detection
// ---------------------------------------------------------------------------

TEST(Codec, DetectSelectsOsnbOnPreambleAndConsumesIt) {
  std::string buf(kOsnbPreamble, kOsnbPreambleLen);
  buf += "rest";
  const Codec* codec = nullptr;
  ASSERT_TRUE(detect_codec(buf, codec));
  EXPECT_EQ(codec->kind(), CodecKind::kOsnb);
  EXPECT_EQ(buf, "rest") << "preamble must be consumed";
}

TEST(Codec, DetectWaitsOnProperPreamblePrefix) {
  for (std::size_t cut = 1; cut < kOsnbPreambleLen; ++cut) {
    std::string buf(kOsnbPreamble, cut);
    const Codec* codec = nullptr;
    EXPECT_FALSE(detect_codec(buf, codec)) << "prefix length " << cut;
    EXPECT_EQ(buf.size(), cut);
  }
}

TEST(Codec, DetectFallsBackToLineOnAnyDivergence) {
  // A JSON request, an almost-preamble, and plain garbage all get the line
  // codec, whose session layer reports garbage the legacy way.
  for (const char* first : {"{\"op\":\"ping\"}\n", "OSNA\x01", "OSN", "x"}) {
    std::string buf = first;
    const Codec* codec = nullptr;
    if (buf.size() < kOsnbPreambleLen &&
        buf == std::string(kOsnbPreamble, buf.size()))
      continue;  // still ambiguous, covered above
    ASSERT_TRUE(detect_codec(buf, codec)) << first;
    EXPECT_EQ(codec->kind(), CodecKind::kLine) << first;
  }
}

TEST(Codec, KindNamesAreStable) {
  EXPECT_STREQ(codec_kind_name(CodecKind::kLine), "json");
  EXPECT_STREQ(codec_kind_name(CodecKind::kOsnb), "osnb");
}

}  // namespace
}  // namespace osn::net
