#include <gtest/gtest.h>

#include "noise/classify.hpp"

namespace osn::noise {
namespace {

TEST(Classify, PaperCategoryMapping) {
  // §IV-A's five categories, verbatim.
  EXPECT_EQ(categorize(ActivityKind::kTimerIrq), NoiseCategory::kPeriodic);
  EXPECT_EQ(categorize(ActivityKind::kTimerSoftirq), NoiseCategory::kPeriodic);
  EXPECT_EQ(categorize(ActivityKind::kPageFault), NoiseCategory::kPageFault);
  EXPECT_EQ(categorize(ActivityKind::kSchedule), NoiseCategory::kScheduling);
  EXPECT_EQ(categorize(ActivityKind::kRcuSoftirq), NoiseCategory::kScheduling);
  EXPECT_EQ(categorize(ActivityKind::kRebalanceSoftirq), NoiseCategory::kScheduling);
  EXPECT_EQ(categorize(ActivityKind::kPreemption), NoiseCategory::kPreemption);
  EXPECT_EQ(categorize(ActivityKind::kNetIrq), NoiseCategory::kIo);
  EXPECT_EQ(categorize(ActivityKind::kNetRxTasklet), NoiseCategory::kIo);
  EXPECT_EQ(categorize(ActivityKind::kNetTxTasklet), NoiseCategory::kIo);
}

TEST(Classify, SyscallsAreRequestedService) {
  EXPECT_EQ(categorize(ActivityKind::kSyscall), NoiseCategory::kRequestedService);
}

TEST(Classify, EveryKindHasACategory) {
  for (std::uint8_t k = 0; k < static_cast<std::uint8_t>(ActivityKind::kMaxKind); ++k) {
    const auto cat = categorize(static_cast<ActivityKind>(k));
    EXPECT_LT(static_cast<std::uint8_t>(cat),
              static_cast<std::uint8_t>(NoiseCategory::kMaxCategory));
  }
}

TEST(Classify, CategoryNamesMatchPaper) {
  EXPECT_EQ(category_name(NoiseCategory::kPeriodic), "periodic");
  EXPECT_EQ(category_name(NoiseCategory::kPageFault), "page fault");
  EXPECT_EQ(category_name(NoiseCategory::kScheduling), "scheduling");
  EXPECT_EQ(category_name(NoiseCategory::kPreemption), "preemption");
  EXPECT_EQ(category_name(NoiseCategory::kIo), "I/O");
}

TEST(Classify, ActivityNamesMatchKernelSymbols) {
  EXPECT_EQ(activity_name(ActivityKind::kTimerSoftirq), "run_timer_softirq");
  EXPECT_EQ(activity_name(ActivityKind::kRebalanceSoftirq), "run_rebalance_domains");
  EXPECT_EQ(activity_name(ActivityKind::kRcuSoftirq), "rcu_process_callbacks");
  EXPECT_EQ(activity_name(ActivityKind::kNetRxTasklet), "net_rx_action");
  EXPECT_EQ(activity_name(ActivityKind::kNetTxTasklet), "net_tx_action");
}

}  // namespace
}  // namespace osn::noise
