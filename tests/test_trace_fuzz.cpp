// Randomized round-trip property: any structurally valid trace — random CPU
// counts, task tables, event mixes, timestamp gaps spanning nine orders of
// magnitude — must survive OSNT serialization bit-for-bit and keep passing
// structural validation.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "trace/trace_io.hpp"
#include "trace_builder.hpp"

namespace osn::trace {
namespace {

TraceModel random_trace(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const auto n_cpus = static_cast<std::uint16_t>(1 + rng.bounded(8));
  osn::testing::TraceBuilder b(n_cpus);

  const std::size_t n_tasks = 1 + rng.bounded(6);
  std::vector<Pid> pids;
  for (std::size_t t = 0; t < n_tasks; ++t) {
    const auto pid = static_cast<Pid>(1 + t);
    b.task(pid, "task" + std::to_string(pid), rng.bounded(2) == 0,
           rng.bounded(3) == 0);
    pids.push_back(pid);
  }

  static constexpr EventType kEntries[] = {
      EventType::kIrqEntry, EventType::kSoftirqEntry, EventType::kTaskletEntry,
      EventType::kPageFaultEntry, EventType::kSyscallEntry, EventType::kScheduleEntry};

  for (CpuId cpu = 0; cpu < n_cpus; ++cpu) {
    TimeNs t = rng.bounded(1000);
    const std::size_t n_events = rng.bounded(200);
    std::vector<std::pair<EventType, std::uint64_t>> open;
    for (std::size_t i = 0; i < n_events; ++i) {
      // Gaps from 1 ns to ~1 s exercise every varint width.
      t += 1 + (rng.next() % (1ULL << (1 + rng.bounded(30))));
      const Pid pid = pids[rng.bounded(pids.size())];
      const std::uint64_t roll = rng.bounded(10);
      if (roll < 3 && open.size() < 4) {
        const EventType entry = kEntries[rng.bounded(std::size(kEntries))];
        const std::uint64_t arg = rng.bounded(4);
        b.ev(cpu, t, pid, entry, arg);
        open.emplace_back(entry, arg);
      } else if (roll < 6 && !open.empty()) {
        const auto [entry, arg] = open.back();
        open.pop_back();
        b.ev(cpu, t, pid, exit_of(entry), arg);
      } else if (roll < 8) {
        b.ev(cpu, t, pid, EventType::kSchedWakeup, pids[rng.bounded(pids.size())]);
      } else {
        b.ev(cpu, t, pid, EventType::kSchedSwitch,
             pack_switch({pids[rng.bounded(pids.size())],
                          pids[rng.bounded(pids.size())], rng.bounded(2) == 0}));
      }
    }
    // Close whatever is still open so the trace stays well-formed.
    while (!open.empty()) {
      const auto [entry, arg] = open.back();
      open.pop_back();
      t += 1 + rng.bounded(1000);
      b.ev(cpu, t, pids[0], exit_of(entry), arg);
    }
  }
  return b.build();
}

class TraceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceFuzz, RoundTripsAndValidates) {
  const TraceModel original = random_trace(GetParam());
  ASSERT_EQ(original.validate(), "");
  const auto bytes = serialize_trace(original);
  const TraceModel restored = deserialize_trace(bytes);
  EXPECT_EQ(original, restored);
  EXPECT_EQ(restored.validate(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144,
                                           233, 377, 610, 987));

}  // namespace
}  // namespace osn::trace
