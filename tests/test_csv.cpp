#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "export/csv.hpp"
#include "trace_builder.hpp"

namespace osn::exporter {
namespace {

using osn::testing::TraceBuilder;
using trace::EventType;

TEST(Csv, IntervalsHaveHeaderAndRows) {
  TraceBuilder b(1);
  b.task(1, "app", true);
  b.pair(0, 100, 2'278, 1, EventType::kIrqEntry, 0);
  b.pair(0, 5'000, 7'913, 1, EventType::kPageFaultEntry, 0);
  auto model = b.build(10'000);
  noise::NoiseAnalysis a(model);
  const std::string csv = intervals_csv(a);

  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "task,cpu,kind,detail,start_ns,end_ns,self_ns,depth");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2u);
  EXPECT_NE(csv.find("timer_interrupt"), std::string::npos);
  EXPECT_NE(csv.find("page_fault"), std::string::npos);
  EXPECT_NE(csv.find("2178"), std::string::npos);  // self time
}

TEST(Csv, ChartRowsPerQuantum) {
  noise::SyntheticChart chart;
  chart.origin = 0;
  chart.quantum = 1'000;
  chart.quanta.resize(3);
  chart.quanta[1].total = 500;
  chart.quanta[1].components.push_back(
      {noise::ActivityKind::kTimerIrq, 0, 500});
  const std::string csv = chart_csv(chart);
  std::istringstream in(csv);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4u);  // header + 3 quanta
  EXPECT_NE(csv.find("timer_interrupt:500"), std::string::npos);
}

TEST(Csv, HistogramRows) {
  stats::Histogram h(0, 10, 2);
  h.add(1, 3);
  h.add(7, 5);
  const std::string csv = histogram_csv(h);
  EXPECT_NE(csv.find("bin_lo,bin_hi,count"), std::string::npos);
  EXPECT_NE(csv.find("0.000,5.000,3"), std::string::npos);
  EXPECT_NE(csv.find("5.000,10.000,5"), std::string::npos);
}

TEST(Csv, WriteTextFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/osn_csv_test.csv";
  ASSERT_TRUE(write_text_file(path, "a,b\n1,2\n"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[32] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(Csv, WriteToBadPathFails) {
  EXPECT_FALSE(write_text_file("/nonexistent/dir/x.csv", "data"));
}

}  // namespace
}  // namespace osn::exporter
