// Execution-frame machinery: tracing discipline, nesting, user-time
// accounting, tick cadence, clean shutdown.
#include <gtest/gtest.h>

#include "kernel_helpers.hpp"

namespace osn::kernel {
namespace {

using osn::testing::compute_program;
using osn::testing::count_events;
using osn::testing::fixed_models;
using osn::testing::KernelRun;
using osn::testing::ScriptProgram;
using trace::EventType;

TEST(KernelExec, SingleTaskRunsAndExits) {
  KernelRun run;
  const Pid pid = run.kernel->spawn("t", compute_program(ms(5), 4), true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  EXPECT_EQ(run.kernel->live_app_count(), 0u);
  EXPECT_EQ(run.kernel->task(pid).state, TaskState::kExited);
  const auto model = run.finish();
  EXPECT_EQ(model.validate(), "");
  EXPECT_EQ(count_events(model, EventType::kProcessExit), 1u);
}

TEST(KernelExec, UserTimeIsConserved) {
  // 20 ms of user work on an otherwise idle node must take at least 20 ms of
  // wall time (noise only ever stretches it).
  KernelRun run;
  run.kernel->spawn("t", compute_program(ms(20), 1), true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  TimeNs exit_ts = 0;
  for (const auto& rec : model.cpu_events(0))
    if (static_cast<EventType>(rec.event) == EventType::kProcessExit)
      exit_ts = rec.timestamp;
  EXPECT_GE(exit_ts, ms(20));
  // On a quiet node the overhead is small: a few ticks plus scheduling.
  EXPECT_LT(exit_ts, ms(21));
}

TEST(KernelExec, TickFiresAtConfiguredFrequencyPerCpu) {
  NodeConfig cfg;
  cfg.n_cpus = 2;
  KernelRun run(cfg);
  run.kernel->spawn("t", compute_program(ms(100), 10), true, 0);
  run.kernel->start();
  run.kernel->engine().run_until(sec(1));
  const auto model = run.finish();
  // 100 Hz per CPU over 1 s, both CPUs tick (one runs the task, one idles).
  std::size_t timer_irqs = 0;
  for (CpuId c = 0; c < model.cpu_count(); ++c) {
    for (const auto& rec : model.cpu_events(c)) {
      if (static_cast<EventType>(rec.event) == EventType::kIrqEntry &&
          rec.arg == static_cast<std::uint64_t>(trace::IrqVector::kTimer))
        ++timer_irqs;
    }
  }
  EXPECT_NEAR(static_cast<double>(timer_irqs), 200.0, 3.0);
}

TEST(KernelExec, EveryTimerIrqRaisesTimerSoftirq) {
  KernelRun run;
  run.kernel->spawn("t", compute_program(ms(50), 4), true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  std::size_t timer_irq = 0, timer_softirq = 0;
  for (CpuId c = 0; c < model.cpu_count(); ++c) {
    for (const auto& rec : model.cpu_events(c)) {
      const auto t = static_cast<EventType>(rec.event);
      if (t == EventType::kIrqEntry &&
          rec.arg == static_cast<std::uint64_t>(trace::IrqVector::kTimer))
        ++timer_irq;
      if (t == EventType::kSoftirqEntry &&
          rec.arg == static_cast<std::uint64_t>(trace::SoftirqNr::kTimer))
        ++timer_softirq;
    }
  }
  EXPECT_EQ(timer_irq, timer_softirq);
  EXPECT_GT(timer_irq, 0u);
}

TEST(KernelExec, NestedInterruptKeepsDiscipline) {
  // A page fault lasting 25 ms is guaranteed to be interrupted by the 10 ms
  // tick: the trace must show irq entry/exit nested inside the fault pair.
  auto models = fixed_models();
  models.pf_minor_anon = stats::DurationModel::fixed(ms(25));
  KernelRun run({}, std::move(models));
  const Pid pid = run.kernel->spawn(
      "t", std::make_unique<ScriptProgram>(std::vector<Action>{ActTouch{0, 0, 1}}),
      true, 0);
  run.kernel->add_region(pid, 4, trace::PageFaultKind::kMinorAnon);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  EXPECT_EQ(model.validate(), "");

  bool saw_nested_irq = false;
  int depth_in_fault = 0;
  for (const auto& rec : model.cpu_events(0)) {
    const auto t = static_cast<EventType>(rec.event);
    if (t == EventType::kPageFaultEntry) depth_in_fault = 1;
    if (t == EventType::kPageFaultExit) depth_in_fault = 0;
    if (depth_in_fault == 1 && t == EventType::kIrqEntry) saw_nested_irq = true;
  }
  EXPECT_TRUE(saw_nested_irq);
}

TEST(KernelExec, InterruptedComputeStillFinishes) {
  // The 25 ms fixed fault pushes the task's compute completion out; total
  // wall time must be >= fault + computes.
  auto models = fixed_models();
  models.pf_minor_anon = stats::DurationModel::fixed(ms(25));
  KernelRun run({}, std::move(models));
  const Pid pid = run.kernel->spawn(
      "t",
      std::make_unique<ScriptProgram>(std::vector<Action>{
          ActCompute{ms(2)}, ActTouch{0, 0, 2}, ActCompute{ms(2)}}),
      true, 0);
  run.kernel->add_region(pid, 4, trace::PageFaultKind::kMinorAnon);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  EXPECT_EQ(model.validate(), "");
  EXPECT_EQ(run.kernel->task(pid).fault_count, 2u);
  EXPECT_GE(run.kernel->now(), ms(2) + 2 * ms(25) + ms(2));
}

TEST(KernelExec, FinishClosesOpenFrames) {
  KernelRun run;
  run.kernel->spawn("t", compute_program(sec(1), 10), true, 0);
  run.kernel->start();
  // Stop mid-run: ticks will be in flight.
  run.kernel->engine().run_until(ms(15) + 500);
  const auto model = run.finish();
  EXPECT_EQ(model.validate(), "");
}

TEST(KernelExec, DaemonsExistOnBoot) {
  NodeConfig cfg;
  cfg.n_cpus = 4;
  KernelRun run(cfg);
  run.kernel->spawn("t", compute_program(ms(1), 1), true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto infos = run.kernel->task_infos();
  std::size_t kthreads = 0;
  for (const auto& [pid, info] : infos)
    if (info.is_kernel_thread) ++kthreads;
  // rpciod + one events/N per CPU.
  EXPECT_EQ(kthreads, 1u + 4u);
  EXPECT_EQ(run.kernel->events_pids().size(), 4u);
}

TEST(KernelExec, SpawnAfterStartForksInTrace) {
  KernelRun run;
  run.kernel->spawn("first", compute_program(ms(30), 1), true, 0);
  run.kernel->start();
  run.kernel->engine().run_until(ms(5));
  run.kernel->spawn("late", compute_program(ms(1), 1), true, 1);
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  // forks: first + rpciod + 8 events + late
  EXPECT_EQ(count_events(model, trace::EventType::kProcessFork), 11u);
  EXPECT_EQ(model.validate(), "");
}

TEST(KernelExec, DeterministicTraces) {
  auto run_once = [] {
    KernelRun run;
    const Pid pid = run.kernel->spawn(
        "t",
        std::make_unique<ScriptProgram>(std::vector<Action>{
            ActCompute{ms(3)}, ActTouch{0, 0, 8}, ActCompute{ms(3)}}),
        true, 0);
    run.kernel->add_region(pid, 16, trace::PageFaultKind::kMinorAnon);
    run.kernel->start();
    run.kernel->run_until_apps_done(sec(10));
    return run.finish();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(KernelExec, SeedChangesStochasticKernelDurations) {
  auto run_with_seed = [](std::uint64_t seed) {
    NodeConfig cfg;
    cfg.seed = seed;
    // Stochastic models this time.
    osn::testing::KernelRun run(cfg, ActivityModels{});
    run.kernel->spawn("t", compute_program(ms(50), 2), true, 0);
    run.kernel->start();
    run.kernel->run_until_apps_done(sec(10));
    return run.kernel->now();
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

}  // namespace
}  // namespace osn::kernel
