// Controlled noise injection: the analyzer must recover the injected ground
// truth (frequency and duration), and the victim's slowdown must equal the
// injected noise share.
#include <gtest/gtest.h>

#include "noise/analysis.hpp"
#include "stats/summary.hpp"
#include "workloads/injector.hpp"
#include "workloads/workload.hpp"

namespace osn::workloads {
namespace {

struct InjectionRun {
  RunResult result;
  double measured_freq = 0;
  double measured_avg_ns = 0;
  std::uint64_t preemptions = 0;
};

InjectionRun run_injection(DurNs period, DurNs duration, DurNs run_for = sec(2)) {
  InjectionParams params;
  params.period = period;
  params.duration = duration;
  params.run_duration = run_for;
  InjectionWorkload wl(params);
  InjectionRun out{run_workload(wl, 1), 0, 0, 0};
  noise::NoiseAnalysis analysis(out.result.trace);
  stats::StreamingSummary s;
  for (const auto& iv : analysis.noise_intervals()) {
    if (iv.kind != noise::ActivityKind::kPreemption) continue;
    if (out.result.trace.task_name(static_cast<Pid>(iv.detail)) != "injector") continue;
    s.add(static_cast<double>(iv.self));
  }
  out.preemptions = s.count();
  out.measured_avg_ns = s.mean();
  out.measured_freq =
      static_cast<double>(s.count()) /
      (static_cast<double>(out.result.trace.duration()) / static_cast<double>(kNsPerSec));
  return out;
}

TEST(Injector, RecoversInjectedFrequency) {
  const auto run = run_injection(10 * kNsPerMs, 100 * kNsPerUs);
  // Injection cycle = period + duration => ~99 Hz.
  const double expected = 1e9 / static_cast<double>(10 * kNsPerMs + 100 * kNsPerUs);
  EXPECT_NEAR(run.measured_freq, expected, expected * 0.02);
}

TEST(Injector, RecoversInjectedDuration) {
  const auto run = run_injection(10 * kNsPerMs, 100 * kNsPerUs);
  // Preemption = burn + bounded scheduling overhead, never less than burn.
  EXPECT_GE(run.measured_avg_ns, 100'000.0);
  EXPECT_LE(run.measured_avg_ns, 112'000.0);
}

TEST(Injector, VictimSlowdownMatchesInjectedShare) {
  // 100 us every ~10 ms ~= 1% injected; victim's 2 s of work must take
  // ~2 s * (1 + noise_share).
  const auto run = run_injection(10 * kNsPerMs, 100 * kNsPerUs);
  const double wall = static_cast<double>(run.result.trace.duration());
  const double slowdown = wall / static_cast<double>(sec(2));
  EXPECT_GT(slowdown, 1.005);
  EXPECT_LT(slowdown, 1.06);  // 1% injection + tick noise + switches
}

TEST(Injector, HigherFrequencyMoreEvents) {
  const auto slow = run_injection(20 * kNsPerMs, 50 * kNsPerUs, sec(1));
  const auto fast = run_injection(2 * kNsPerMs, 50 * kNsPerUs, sec(1));
  EXPECT_GT(fast.preemptions, 5 * slow.preemptions);
}

TEST(Injector, TraceValidates) {
  InjectionWorkload wl;
  const RunResult run = run_workload(wl, 2);
  EXPECT_EQ(run.trace.validate(), "");
  EXPECT_TRUE(run.trace.is_app(wl.victim_pid()));
  EXPECT_FALSE(run.trace.is_app(wl.injector_pid()));
}

TEST(Injector, DeterministicAcrossRuns) {
  InjectionWorkload a, b;
  EXPECT_EQ(run_workload(a, 5).trace, run_workload(b, 5).trace);
}

}  // namespace
}  // namespace osn::workloads
