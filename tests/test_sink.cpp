// Trace sinks: routing, counting, filtering — the knobs behind "simply
// applying different filters" (§III-A).
#include <gtest/gtest.h>

#include "trace/sink.hpp"

namespace osn::trace {
namespace {

tracebuf::EventRecord rec(EventType type, TimeNs ts = 1) {
  return make_record(ts, 0, 1, type, 0);
}

TEST(Sinks, VectorSinkStoresInOrder) {
  VectorSink sink;
  sink.write(rec(EventType::kIrqEntry, 10));
  sink.write(rec(EventType::kIrqExit, 20));
  ASSERT_EQ(sink.records().size(), 2u);
  EXPECT_EQ(sink.records()[0].timestamp, 10u);
  EXPECT_EQ(sink.records()[1].timestamp, 20u);
}

TEST(Sinks, VectorSinkTakeMovesOut) {
  VectorSink sink;
  sink.write(rec(EventType::kSchedWakeup));
  auto taken = sink.take();
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_TRUE(sink.records().empty());
}

TEST(Sinks, NullSinkDiscards) {
  NullSink sink;
  for (int i = 0; i < 100; ++i) sink.write(rec(EventType::kSchedWakeup));
  // Nothing observable — the point is it never crashes and costs nothing.
  SUCCEED();
}

TEST(Sinks, CountingSinkCounts) {
  CountingSink sink;
  for (int i = 0; i < 42; ++i) sink.write(rec(EventType::kSchedWakeup));
  EXPECT_EQ(sink.count(), 42u);
}

TEST(Sinks, ChannelSinkRoutesByRecordCpu) {
  tracebuf::ChannelSet channels(4, 16);
  ChannelSink sink(channels);
  sink.write(make_record(1, /*cpu=*/2, 1, EventType::kIrqEntry, 0));
  sink.write(make_record(2, /*cpu=*/3, 1, EventType::kIrqExit, 0));
  EXPECT_EQ(channels.channel(2).size(), 1u);
  EXPECT_EQ(channels.channel(3).size(), 1u);
  EXPECT_EQ(channels.channel(0).size(), 0u);
}

TEST(Sinks, FilteredSinkPassesEverythingByDefault) {
  VectorSink inner;
  FilteredSink filtered(inner);
  filtered.write(rec(EventType::kIrqEntry));
  filtered.write(rec(EventType::kSchedSwitch));
  EXPECT_EQ(inner.records().size(), 2u);
}

TEST(Sinks, FilteredSinkDropsDisabledTypes) {
  VectorSink inner;
  FilteredSink filtered(inner);
  filtered.set_enabled(EventType::kSchedSwitch, false);
  EXPECT_FALSE(filtered.enabled(EventType::kSchedSwitch));
  EXPECT_TRUE(filtered.enabled(EventType::kIrqEntry));
  filtered.write(rec(EventType::kIrqEntry));
  filtered.write(rec(EventType::kSchedSwitch));
  filtered.write(rec(EventType::kIrqExit));
  ASSERT_EQ(inner.records().size(), 2u);
  EXPECT_EQ(static_cast<EventType>(inner.records()[0].event), EventType::kIrqEntry);
  EXPECT_EQ(static_cast<EventType>(inner.records()[1].event), EventType::kIrqExit);
}

TEST(Sinks, FilteredSinkReEnable) {
  VectorSink inner;
  FilteredSink filtered(inner);
  filtered.set_enabled(EventType::kAppMark, false);
  filtered.write(rec(EventType::kAppMark));
  filtered.set_enabled(EventType::kAppMark, true);
  filtered.write(rec(EventType::kAppMark));
  EXPECT_EQ(inner.records().size(), 1u);
}

}  // namespace
}  // namespace osn::trace
