// Barriers, sleeps, app markers — the synchronization surface workloads use.
#include <gtest/gtest.h>

#include "kernel_helpers.hpp"

namespace osn::kernel {
namespace {

using osn::testing::count_events;
using osn::testing::KernelRun;
using osn::testing::ScriptProgram;
using trace::EventType;

std::vector<Action> barrier_script(std::uint32_t parties, int rounds, DurNs work) {
  std::vector<Action> s;
  for (int k = 0; k < rounds; ++k) {
    s.push_back(ActCompute{work});
    s.push_back(ActBarrier{static_cast<std::uint32_t>(k), parties});
  }
  return s;
}

TEST(KernelSync, BarrierReleasesAllParties) {
  NodeConfig cfg;
  cfg.n_cpus = 4;
  KernelRun run(cfg);
  for (int i = 0; i < 4; ++i)
    run.kernel->spawn("t" + std::to_string(i),
                      std::make_unique<ScriptProgram>(barrier_script(4, 5, ms(1))),
                      true, static_cast<CpuId>(i));
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  EXPECT_EQ(run.kernel->live_app_count(), 0u);
}

TEST(KernelSync, BarrierSynchronizesSkewedRanks) {
  // One slow rank: the fast ones must wait; total time tracks the slow one.
  NodeConfig cfg;
  cfg.n_cpus = 2;
  KernelRun run(cfg);
  run.kernel->spawn("fast",
                    std::make_unique<ScriptProgram>(barrier_script(2, 1, ms(1))), true,
                    0);
  run.kernel->spawn("slow",
                    std::make_unique<ScriptProgram>(barrier_script(2, 1, ms(40))),
                    true, 1);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  EXPECT_GE(run.kernel->now(), ms(40));
}

TEST(KernelSync, BarrierEmitsFutexSyscalls) {
  NodeConfig cfg;
  cfg.n_cpus = 2;
  KernelRun run(cfg);
  for (int i = 0; i < 2; ++i)
    run.kernel->spawn("t" + std::to_string(i),
                      std::make_unique<ScriptProgram>(barrier_script(2, 3, ms(1))),
                      true, static_cast<CpuId>(i));
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  std::size_t futexes = 0;
  for (CpuId c = 0; c < model.cpu_count(); ++c)
    for (const auto& rec : model.cpu_events(c))
      if (static_cast<EventType>(rec.event) == EventType::kSyscallEntry &&
          rec.arg == static_cast<std::uint64_t>(trace::SyscallNr::kFutex))
        ++futexes;
  EXPECT_EQ(futexes, 2u * 3u);
}

TEST(KernelSync, BarrierIsReusableAcrossRounds) {
  // Same barrier id reused every round (arrived counter must reset).
  NodeConfig cfg;
  cfg.n_cpus = 2;
  KernelRun run(cfg);
  std::vector<Action> script;
  for (int k = 0; k < 10; ++k) {
    script.push_back(ActCompute{us(100)});
    script.push_back(ActBarrier{7, 2});  // same id each round
  }
  for (int i = 0; i < 2; ++i)
    run.kernel->spawn("t" + std::to_string(i),
                      std::make_unique<ScriptProgram>(script), true,
                      static_cast<CpuId>(i));
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  EXPECT_EQ(run.kernel->live_app_count(), 0u);
}

TEST(KernelSync, SleepDoesNotBusyTheCpu) {
  // While one task sleeps 50 ms, another task on the same CPU runs freely.
  NodeConfig cfg;
  cfg.n_cpus = 1;
  KernelRun run(cfg);
  run.kernel->spawn(
      "sleeper",
      std::make_unique<ScriptProgram>(std::vector<Action>{ActSleep{ms(50)}}), true, 0);
  run.kernel->spawn("worker", osn::testing::compute_program(ms(40), 1), true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  // Worker's 40 ms fits inside the sleeper's 50 ms window: total ~50-62 ms.
  EXPECT_LT(run.kernel->now(), ms(63));
}

TEST(KernelSync, MarksLandInTrace) {
  class MarkingProgram final : public TaskProgram {
   public:
    Action next(Kernel& k, Task& self) override {
      if (step_ == 0) {
        k.mark(self, trace::AppMark::kBarrierEnter);
        ++step_;
        return ActCompute{ms(1)};
      }
      if (step_ == 1) {
        k.mark(self, trace::AppMark::kBarrierExit);
        ++step_;
        return ActCompute{ms(1)};
      }
      return ActExit{};
    }

   private:
    int step_ = 0;
  };
  KernelRun run;
  run.kernel->spawn("t", std::make_unique<MarkingProgram>(), true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  EXPECT_EQ(count_events(model, EventType::kAppMark), 2u);
}

TEST(KernelSync, MaxTimeStopsRunawayRun) {
  // A task that never exits: run_until_apps_done must respect max_time.
  class ForeverProgram final : public TaskProgram {
   public:
    Action next(Kernel&, Task&) override { return ActCompute{ms(1)}; }
  };
  KernelRun run;
  run.kernel->spawn("t", std::make_unique<ForeverProgram>(), true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(ms(100));
  EXPECT_LE(run.kernel->now(), ms(101));
  EXPECT_EQ(run.kernel->live_app_count(), 1u);
}


TEST(KernelSync, PreciseSleepWakesAtExactExpiry) {
  // hrtimer-backed nanosleep (§IV-E): the local timer raises an interrupt at
  // exactly the expiry, not at the next tick.
  KernelRun run;
  run.kernel->spawn(
      "t",
      std::make_unique<ScriptProgram>(std::vector<Action>{
          ActSleep{ms(25) + 137, /*precise=*/true}, ActCompute{us(10)}}),
      true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  // Exit = syscall overhead + 25.000137 ms sleep + wake/schedule + 10 us +
  // the kernel's ~1 ms post-exit grace period — well under the 5 ms it
  // would take if the wake had waited for the next 10 ms tick.
  EXPECT_GE(run.kernel->now(), ms(25) + 137);
  EXPECT_LE(run.kernel->now(), ms(27));
}

TEST(KernelSync, TickGranularSleepRoundsUpToTick) {
  KernelRun run;
  run.kernel->spawn(
      "t",
      std::make_unique<ScriptProgram>(std::vector<Action>{
          ActSleep{ms(25) + 137, /*precise=*/false}}),
      true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  // Low-res timers fire from run_timer_softirq on the next tick: >= 30 ms.
  EXPECT_GE(run.kernel->now(), ms(30));
}

TEST(KernelSync, HrtimerIrqDoesNotRaiseTimerSoftirq) {
  // An hrtimer-only timer interrupt must not run the tick machinery: the
  // run_timer_softirq count stays equal to the periodic tick count.
  KernelRun run;
  run.kernel->spawn(
      "t",
      std::make_unique<ScriptProgram>(std::vector<Action>{
          ActCompute{ms(2)}, ActSleep{ms(3), true}, ActCompute{ms(2)},
          ActSleep{ms(3), true}, ActCompute{ms(2)}}),
      true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  std::size_t timer_irqs = 0, timer_softirqs = 0;
  for (CpuId c = 0; c < model.cpu_count(); ++c) {
    for (const auto& rec : model.cpu_events(c)) {
      const auto t = static_cast<EventType>(rec.event);
      if (t == EventType::kIrqEntry &&
          rec.arg == static_cast<std::uint64_t>(trace::IrqVector::kTimer))
        ++timer_irqs;
      if (t == EventType::kSoftirqEntry &&
          rec.arg == static_cast<std::uint64_t>(trace::SoftirqNr::kTimer))
        ++timer_softirqs;
    }
  }
  // Two hrtimer expiries add two timer irqs beyond the periodic ticks.
  EXPECT_EQ(timer_irqs, timer_softirqs + 2);
  EXPECT_EQ(model.validate(), "");
}

}  // namespace
}  // namespace osn::kernel
