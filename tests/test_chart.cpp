// Synthetic OS noise chart and interruption grouping.
#include <gtest/gtest.h>

#include "noise/chart.hpp"
#include "trace_builder.hpp"

namespace osn::noise {
namespace {

using osn::testing::TraceBuilder;
using trace::EventType;

TraceBuilder app_builder() {
  TraceBuilder b(1);
  b.task(1, "app", true);
  return b;
}

TEST(Chart, IntervalLandsInItsQuantum) {
  auto b = app_builder();
  b.pair(0, 1'500, 2'500, 1, EventType::kIrqEntry, 0);
  const auto model_a = b.build(ms(10));
  NoiseAnalysis a(model_a);
  const SyntheticChart chart = build_chart(a, 1, 0, 1'000, 10);
  ASSERT_EQ(chart.quanta.size(), 10u);
  EXPECT_EQ(chart.quanta[1].total, 500u);
  EXPECT_EQ(chart.quanta[2].total, 500u);
  EXPECT_EQ(chart.quanta[0].total, 0u);
  for (std::size_t q = 3; q < 10; ++q) EXPECT_EQ(chart.quanta[q].total, 0u);
}

TEST(Chart, BoundaryStraddlingSplitsProportionally) {
  auto b = app_builder();
  // 4000 ns interval: 25% in quantum 0, 75% in quantum 1 (quantum = 2000).
  b.pair(0, 1'500, 5'500, 1, EventType::kIrqEntry, 0);
  const auto model_a = b.build(ms(1));
  NoiseAnalysis a(model_a);
  const SyntheticChart chart = build_chart(a, 1, 0, 2'000, 4);
  EXPECT_EQ(chart.quanta[0].total, 500u);
  EXPECT_EQ(chart.quanta[1].total, 2'000u);
  EXPECT_EQ(chart.quanta[2].total, 1'500u);
}

TEST(Chart, TotalsConserveChargedTime) {
  auto b = app_builder();
  b.pair(0, 100, 2'300, 1, EventType::kIrqEntry, 0);
  b.pair(0, 5'000, 8'100, 1, EventType::kPageFaultEntry, 0);
  b.pair(0, 12'000, 12'900, 1, EventType::kSoftirqEntry, 1);
  const auto model_a = b.build(ms(1));
  NoiseAnalysis a(model_a);
  const SyntheticChart chart = build_chart(a, 1, 0, 1'000, 20);
  DurNs total = 0;
  for (const auto& q : chart.quanta) total += q.total;
  // Rounding at splits can lose at most a few ns per piece.
  EXPECT_NEAR(static_cast<double>(total), 2'200 + 3'100 + 900, 4);
}

TEST(Chart, ComponentsCarryActivityKinds) {
  auto b = app_builder();
  b.pair(0, 100, 1'100, 1, EventType::kIrqEntry, 0);
  b.pair(0, 1'100, 1'600, 1, EventType::kSoftirqEntry, 1);
  const auto model_a = b.build(ms(1));
  NoiseAnalysis a(model_a);
  const SyntheticChart chart = build_chart(a, 1, 0, 10'000, 2);
  ASSERT_EQ(chart.quanta[0].components.size(), 2u);
  EXPECT_EQ(chart.quanta[0].components[0].kind, ActivityKind::kTimerIrq);
  EXPECT_EQ(chart.quanta[0].components[1].kind, ActivityKind::kTimerSoftirq);
}

TEST(Chart, OtherTasksIgnored) {
  TraceBuilder b(2);
  b.task(1, "a", true).task(2, "b", true);
  b.pair(0, 100, 1'100, 1, EventType::kIrqEntry, 0);
  b.pair(1, 100, 1'100, 2, EventType::kIrqEntry, 0);
  const auto model_a = b.build(ms(1));
  NoiseAnalysis a(model_a);
  const SyntheticChart chart = build_chart(a, 1, 0, 10'000, 2);
  EXPECT_EQ(chart.quanta[0].total, 1'000u);
}

TEST(Chart, NestedIntervalsChargeSelfTimeOnly) {
  auto b = app_builder();
  b.ev(0, 1'000, 1, EventType::kTaskletEntry, 0);
  b.ev(0, 2'000, 1, EventType::kIrqEntry, 0);
  b.ev(0, 3'000, 1, EventType::kIrqExit, 0);
  b.ev(0, 5'000, 1, EventType::kTaskletExit, 0);
  const auto model_a = b.build(ms(1));
  NoiseAnalysis a(model_a);
  const SyntheticChart chart = build_chart(a, 1, 0, 10'000, 1);
  EXPECT_EQ(chart.quanta[0].total, 4'000u);  // not 5000: no double count
}

TEST(Chart, TotalsVectorMatches) {
  auto b = app_builder();
  b.pair(0, 100, 600, 1, EventType::kIrqEntry, 0);
  const auto model_a = b.build(ms(1));
  NoiseAnalysis a(model_a);
  const SyntheticChart chart = build_chart(a, 1, 0, 1'000, 3);
  EXPECT_EQ(chart.totals(), (std::vector<double>{500.0, 0.0, 0.0}));
}

TEST(Interruptions, AdjacentIntervalsGroup) {
  // The Fig 2b composite: irq + softirq + schedule + preemption back-to-back.
  auto b = app_builder();
  b.task(9, "events", false, true);
  b.pair(0, 1'000, 3'178, 1, EventType::kIrqEntry, 0);
  b.pair(0, 3'178, 5'020, 1, EventType::kSoftirqEntry, 1);
  b.pair(0, 5'020, 5'402, 1, EventType::kScheduleEntry, 0);
  b.ev(0, 5'402, 1, EventType::kSchedSwitch, trace::pack_switch({1, 9, true}));
  b.ev(0, 7'617, 9, EventType::kSchedSwitch, trace::pack_switch({9, 1, false}));
  const auto model_a = b.build(ms(1));
  NoiseAnalysis a(model_a);
  const auto groups = group_interruptions(a, 1);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].parts.size(), 4u);
  EXPECT_EQ(groups[0].total, 2'178u + 1'842u + 382u + 2'215u);
  const std::string desc = describe_interruption(groups[0]);
  EXPECT_NE(desc.find("timer_interrupt(2178)"), std::string::npos);
  EXPECT_NE(desc.find("preemption(2215)"), std::string::npos);
}

TEST(Interruptions, GapSplitsGroups) {
  auto b = app_builder();
  b.pair(0, 1'000, 2'000, 1, EventType::kIrqEntry, 0);
  b.pair(0, 50'000, 51'000, 1, EventType::kPageFaultEntry, 0);
  const auto model_a = b.build(ms(1));
  NoiseAnalysis a(model_a);
  const auto groups = group_interruptions(a, 1, 200);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].parts[0].kind, ActivityKind::kTimerIrq);
  EXPECT_EQ(groups[1].parts[0].kind, ActivityKind::kPageFault);
}

TEST(Interruptions, NestedIntervalsJoinTheirParentGroup) {
  auto b = app_builder();
  b.ev(0, 1'000, 1, EventType::kTaskletEntry, 0);
  b.ev(0, 2'000, 1, EventType::kIrqEntry, 0);
  b.ev(0, 3'000, 1, EventType::kIrqExit, 0);
  b.ev(0, 5'000, 1, EventType::kTaskletExit, 0);
  const auto model_a = b.build(ms(1));
  NoiseAnalysis a(model_a);
  const auto groups = group_interruptions(a, 1);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].parts.size(), 2u);
  EXPECT_EQ(groups[0].total, 4'000u);  // self times, no double count
}

TEST(Chart, InvalidParamsDie) {
  auto b = app_builder();
  const auto model_a = b.build(ms(1));
  NoiseAnalysis a(model_a);
  EXPECT_DEATH(build_chart(a, 1, 0, 0, 10), "");
  EXPECT_DEATH(build_chart(a, 1, 0, 100, 0), "");
}

}  // namespace
}  // namespace osn::noise
