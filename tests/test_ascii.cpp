#include <gtest/gtest.h>

#include <array>
#include <set>

#include "export/ascii.hpp"
#include "trace_builder.hpp"

namespace osn::exporter {
namespace {

using osn::testing::TraceBuilder;
using trace::EventType;

TEST(Ascii, GlyphsAreDistinct) {
  std::set<char> glyphs;
  for (int c = 0; c < static_cast<int>(noise::NoiseCategory::kMaxCategory); ++c)
    glyphs.insert(category_glyph(static_cast<noise::NoiseCategory>(c)));
  EXPECT_EQ(glyphs.size(),
            static_cast<std::size_t>(noise::NoiseCategory::kMaxCategory));
}

TEST(Ascii, TimelineMarksDominantCategory) {
  TraceBuilder b(1);
  b.task(1, "rank0", true);
  // Page fault in the first tenth, timer irq in the last tenth.
  b.pair(0, 100, 3'000, 1, EventType::kPageFaultEntry, 0);
  b.pair(0, 95'000, 98'000, 1, EventType::kIrqEntry, 0);
  auto model = b.build(100'000);
  noise::NoiseAnalysis a(model);
  const std::string out = render_timeline(a, 0, 100'000, 10);
  // One row for the rank; 'P' near the start, 'T' near the end.
  const std::size_t bar = out.find('|');
  ASSERT_NE(bar, std::string::npos);
  EXPECT_EQ(out[bar + 1], 'P');
  EXPECT_EQ(out[bar + 10], 'T');
  EXPECT_EQ(out[bar + 5], '.');
}

TEST(Ascii, TimelineFilterShowsOnlyOneCategory) {
  TraceBuilder b(1);
  b.task(1, "rank0", true);
  b.pair(0, 100, 3'000, 1, EventType::kPageFaultEntry, 0);
  b.pair(0, 95'000, 98'000, 1, EventType::kIrqEntry, 0);
  auto model = b.build(100'000);
  noise::NoiseAnalysis a(model);
  const std::string out =
      render_timeline(a, 0, 100'000, 10, noise::NoiseCategory::kPageFault);
  EXPECT_NE(out.find('P'), std::string::npos);
  // The timer irq must be filtered out of the strip body. ('T' still appears
  // in the legend text, so check the bar region only.)
  const std::size_t bar = out.find('|');
  EXPECT_EQ(out.substr(bar, 12).find('T'), std::string::npos);
}

TEST(Ascii, SpikesListNonQuietQuanta) {
  noise::SyntheticChart chart;
  chart.origin = 0;
  chart.quantum = 1'000'000;
  chart.quanta.resize(3);
  for (std::size_t i = 0; i < 3; ++i)
    chart.quanta[i].start = static_cast<TimeNs>(i) * chart.quantum;
  chart.quanta[1].total = 4'500;
  chart.quanta[1].components.push_back({noise::ActivityKind::kTimerIrq, 0, 2'500});
  chart.quanta[1].components.push_back(
      {noise::ActivityKind::kTimerSoftirq, 1, 2'000});
  const std::string out = render_spikes(chart, 1'000);
  EXPECT_NE(out.find("4.50 us"), std::string::npos);
  EXPECT_NE(out.find("timer_interrupt(2500)"), std::string::npos);
  EXPECT_NE(out.find("run_timer_softirq(2000)"), std::string::npos);
  // Quiet quanta are not listed.
  EXPECT_EQ(out.find("t=     0.000"), std::string::npos);
}

TEST(Ascii, SpikesRespectsRowLimit) {
  noise::SyntheticChart chart;
  chart.origin = 0;
  chart.quantum = 1'000;
  chart.quanta.resize(100);
  for (std::size_t i = 0; i < 100; ++i) {
    chart.quanta[i].start = static_cast<TimeNs>(i) * 1'000;
    chart.quanta[i].total = 500;
  }
  const std::string out = render_spikes(chart, 0, 5);
  EXPECT_NE(out.find("elided"), std::string::npos);
}

TEST(Ascii, SpikesEmptyChartSaysSo) {
  noise::SyntheticChart chart;
  chart.origin = 0;
  chart.quantum = 1'000;
  chart.quanta.resize(4);
  EXPECT_NE(render_spikes(chart).find("no quanta"), std::string::npos);
}

TEST(Ascii, BreakdownRowPercentagesSumSensibly) {
  std::array<DurNs, static_cast<std::size_t>(noise::NoiseCategory::kMaxCategory)> bd{};
  bd[static_cast<std::size_t>(noise::NoiseCategory::kPageFault)] = 824;
  bd[static_cast<std::size_t>(noise::NoiseCategory::kPeriodic)] = 100;
  bd[static_cast<std::size_t>(noise::NoiseCategory::kPreemption)] = 76;
  const std::string out = render_breakdown_row("AMG", bd);
  EXPECT_NE(out.find("page fault=82.4%"), std::string::npos);
  EXPECT_NE(out.find("periodic=10.0%"), std::string::npos);
}

TEST(Ascii, BreakdownRowHandlesZeroNoise) {
  std::array<DurNs, static_cast<std::size_t>(noise::NoiseCategory::kMaxCategory)> bd{};
  EXPECT_NE(render_breakdown_row("x", bd).find("no noise"), std::string::npos);
}

TEST(Ascii, BreakdownIgnoresRequestedService) {
  std::array<DurNs, static_cast<std::size_t>(noise::NoiseCategory::kMaxCategory)> bd{};
  bd[static_cast<std::size_t>(noise::NoiseCategory::kPageFault)] = 100;
  bd[static_cast<std::size_t>(noise::NoiseCategory::kRequestedService)] = 900;
  const std::string out = render_breakdown_row("x", bd);
  EXPECT_NE(out.find("page fault=100.0%"), std::string::npos);
}

}  // namespace
}  // namespace osn::exporter
