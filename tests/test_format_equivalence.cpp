// Cross-format equivalence (the compat-shim contract): the same synthetic
// 8-CPU trace stored as OSNT v1, v2 and v3 must produce the identical
// TraceModel and *byte-identical* analysis artifacts — intervals CSV, summary
// JSON, Paraver export — whichever format, ingestion path (direct model vs
// EventSource) and worker count produced them.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "export/csv.hpp"
#include "export/json.hpp"
#include "export/paraver.hpp"
#include "noise/analysis.hpp"
#include "trace/event_source.hpp"
#include "trace/trace_io.hpp"
#include "trace_builder.hpp"

namespace osn::trace {
namespace {

using osn::testing::TraceBuilder;

/// A synthetic 8-CPU trace with app ranks, a kernel daemon, kernel activity
/// of several kinds, barrier windows and preemption-ish scheduling churn.
TraceModel synthetic_trace() {
  TraceBuilder b(8);
  for (Pid r = 1; r <= 8; ++r) b.task(r, "rank" + std::to_string(r - 1), true);
  b.task(20, "rpciod", false, true);
  for (CpuId cpu = 0; cpu < 8; ++cpu) {
    const Pid rank = static_cast<Pid>(cpu + 1);
    TimeNs t = 1'000 + static_cast<TimeNs>(cpu) * 37;
    b.ev(cpu, t, rank, EventType::kAppMark,
         static_cast<std::uint64_t>(AppMark::kComputeBegin));
    for (std::uint64_t i = 0; i < 60; ++i) {
      b.pair(cpu, t + 200, t + 200 + 2'000 + 70 * (i % 9), rank, EventType::kIrqEntry, 0);
      if (i % 3 == 0)
        b.pair(cpu, t + 3'000, t + 3'600, rank, EventType::kSoftirqEntry,
               static_cast<std::uint64_t>(SoftirqNr::kTimer));
      if (i % 5 == 0)
        b.pair(cpu, t + 4'000, t + 6'500, rank, EventType::kPageFaultEntry,
               static_cast<std::uint64_t>(PageFaultKind::kMinorAnon));
      if (i % 11 == 0) {
        b.ev(cpu, t + 7'000, rank, EventType::kAppMark,
             static_cast<std::uint64_t>(AppMark::kBarrierEnter));
        b.ev(cpu, t + 8'500, rank, EventType::kAppMark,
             static_cast<std::uint64_t>(AppMark::kBarrierExit));
      }
      t += 10'000 + 13 * (i % 7) + cpu;  // cpu is unsigned; keeps streams distinct
    }
    b.ev(cpu, t, rank, EventType::kAppMark,
         static_cast<std::uint64_t>(AppMark::kComputeEnd));
  }
  return b.build(650'000);
}

struct Artifacts {
  std::string csv;
  std::string json;
  exporter::ParaverFiles paraver;
};

Artifacts artifacts_of(const noise::NoiseAnalysis& analysis) {
  return {exporter::intervals_csv(analysis), exporter::summary_json(analysis),
          exporter::export_paraver(analysis)};
}

TEST(FormatEquivalence, V1V2V3ProduceByteIdenticalAnalysis) {
  const TraceModel original = synthetic_trace();
  ASSERT_EQ(original.validate(), "");

  // Store the identical trace in all three layouts.
  const std::string v1 = ::testing::TempDir() + "/fmt_v1.osnt";
  ASSERT_TRUE(write_trace_file(original, v1));
  const std::string v2 = ::testing::TempDir() + "/fmt_v2.osnt";
  const std::string v3 = ::testing::TempDir() + "/fmt_v3.osnt";
  {
    OsntStreamWriter w2(v2, 64, OsntStreamWriter::Format::kV2);
    OsntStreamWriter w3(v3, 64, OsntStreamWriter::Format::kV3);
    for (const auto& rec : original.merged()) {
      w2.append(rec);
      w3.append(rec);
    }
    ASSERT_TRUE(w2.finish(original.meta(), original.tasks()));
    ASSERT_TRUE(w3.finish(original.meta(), original.tasks()));
  }

  // Reference: analysis straight off the in-memory model, serial.
  noise::AnalysisOptions serial;
  serial.jobs = 1;
  const noise::NoiseAnalysis reference(original, serial);
  const Artifacts expected = artifacts_of(reference);
  EXPECT_FALSE(expected.csv.empty());
  EXPECT_FALSE(expected.json.empty());
  EXPECT_FALSE(expected.paraver.prv.empty());

  for (const std::string& path : {v1, v2, v3}) {
    auto source = open_trace_source(path);
    const TraceModel decoded = source->to_model();
    EXPECT_EQ(decoded, original) << path;

    // Through the EventSource ctor, serial and parallel.
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
      auto src = open_trace_source(path);
      noise::AnalysisOptions opts;
      opts.jobs = jobs;
      const noise::NoiseAnalysis analysis(*src, opts);
      const Artifacts got = artifacts_of(analysis);
      EXPECT_EQ(got.csv, expected.csv) << path << " jobs=" << jobs;
      EXPECT_EQ(got.json, expected.json) << path << " jobs=" << jobs;
      EXPECT_EQ(got.paraver.prv, expected.paraver.prv) << path << " jobs=" << jobs;
      EXPECT_EQ(got.paraver.pcf, expected.paraver.pcf) << path << " jobs=" << jobs;
      EXPECT_EQ(got.paraver.row, expected.paraver.row) << path << " jobs=" << jobs;
    }
  }
  std::remove(v1.c_str());
  std::remove(v2.c_str());
  std::remove(v3.c_str());
}

}  // namespace
}  // namespace osn::trace
