// Host-side components: the real-machine FTQ and the threaded tracer over
// the lock-free channels. Assertions are deliberately loose — this runs on
// whatever machine builds the repo.
#include <gtest/gtest.h>

#include <thread>

#include "host/host_clock.hpp"
#include "host/host_ftq.hpp"
#include "host/thread_tracer.hpp"

namespace osn::host {
namespace {

TEST(HostClock, Monotonic) {
  TimeNs prev = now_ns();
  for (int i = 0; i < 1000; ++i) {
    const TimeNs t = now_ns();
    ASSERT_GE(t, prev);
    prev = t;
  }
}

TEST(BusyWork, ScalesWithIterations) {
  const TimeNs t0 = now_ns();
  busy_work(50'000);
  const TimeNs t1 = now_ns();
  busy_work(5'000'000);
  const TimeNs t2 = now_ns();
  EXPECT_GT(t2 - t1, t1 - t0);
}

TEST(HostFtq, ProducesRequestedQuantaAndSaneNmax) {
  HostFtqParams p;
  p.quantum = 2 * kNsPerMs;
  p.n_quanta = 50;  // 100 ms of wall time
  const HostFtqResult r = run_host_ftq(p);
  ASSERT_EQ(r.units_per_quantum.size(), 50u);
  EXPECT_GT(r.nmax, 0u);
  EXPECT_GT(r.unit_cost_ns, 0.0);
  for (const auto units : r.units_per_quantum) EXPECT_LE(units, r.nmax);
}

TEST(HostFtq, NoiseVectorNonNegative) {
  HostFtqParams p;
  p.quantum = 1 * kNsPerMs;
  p.n_quanta = 30;
  const HostFtqResult r = run_host_ftq(p);
  const auto noise = r.noise_ns();
  ASSERT_EQ(noise.size(), 30u);
  for (const double v : noise) EXPECT_GE(v, 0.0);
}

TEST(ThreadTracer, SingleLaneRoundTrip) {
  ThreadTracer tracer(1);
  tracer.record(0, trace::EventType::kIrqEntry, 0, 42);
  tracer.record(0, trace::EventType::kIrqExit, 0, 42);
  tracer.stop_consumer();  // inline drain
  ASSERT_EQ(tracer.collected().size(), 2u);
  EXPECT_EQ(tracer.collected()[0].pid, 42u);
  EXPECT_LE(tracer.collected()[0].timestamp, tracer.collected()[1].timestamp);
}

TEST(ThreadTracer, ConcurrentProducersWithLiveConsumer) {
  constexpr std::size_t kLanes = 4;
  constexpr std::uint64_t kPerLane = 50'000;
  ThreadTracer tracer(kLanes, 1u << 14);
  tracer.start_consumer();

  std::vector<std::thread> producers;
  for (CpuId lane = 0; lane < kLanes; ++lane) {
    producers.emplace_back([&tracer, lane] {
      for (std::uint64_t i = 0; i < kPerLane; ++i)
        tracer.record(lane, trace::EventType::kSchedWakeup, i, lane);
    });
  }
  for (auto& t : producers) t.join();
  // Give the consumer a moment, then stop (which drains the rest).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  tracer.stop_consumer();

  EXPECT_EQ(tracer.collected().size() + tracer.lost(), kLanes * kPerLane);
  // Per-lane ordering survives the concurrent drain.
  std::array<std::uint64_t, kLanes> next{};
  std::array<bool, kLanes> ordered{};
  ordered.fill(true);
  for (const auto& rec : tracer.collected()) {
    if (rec.arg < next[rec.cpu]) ordered[rec.cpu] = false;
    next[rec.cpu] = rec.arg;
  }
  for (const bool ok : ordered) EXPECT_TRUE(ok);
}

TEST(ThreadTracer, TimestampsRelativeToOrigin) {
  ThreadTracer tracer(1);
  tracer.record(0, trace::EventType::kAppMark, 0);
  tracer.stop_consumer();
  ASSERT_EQ(tracer.collected().size(), 1u);
  // Recorded within a second of tracer construction.
  EXPECT_LT(tracer.collected()[0].timestamp, kNsPerSec);
}

}  // namespace
}  // namespace osn::host
