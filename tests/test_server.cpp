// End-to-end server tests: concurrent clients, byte-identity with the
// offline exporter, cache behaviour, deadlines, load shedding, drain.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "export/json.hpp"
#include "noise/analysis.hpp"
#include "query/engine.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve_helpers.hpp"

namespace osn::serve {
namespace {

using serve::testing::TempDir;
using serve::testing::make_model;
using serve::testing::write_trace;

ServerOptions options_for(const std::string& dir) {
  ServerOptions o;
  o.dir = dir;
  o.port = 0;  // kernel-assigned; no port races between parallel tests
  o.workers = 4;
  return o;
}

Request summary_request(std::uint64_t id) {
  Request req;
  req.id = id;
  req.op = Op::kSummary;
  req.trace = "t";
  return req;
}

Request window_request(std::uint64_t id, double from_ms, double to_ms) {
  Request req;
  req.id = id;
  req.op = Op::kWindow;
  req.trace = "t";
  req.has_window = true;
  req.window_from_ms = from_ms;
  req.window_to_ms = to_ms;
  return req;
}

TEST(Server, ConcurrentClientsMatchOfflineAnalysis) {
  TempDir dir("server_e2e");
  const trace::TraceModel model = make_model();
  write_trace(model, dir.path(), "t");

  // The offline truth, computed exactly as `osn-analyze export --json` and
  // `--window 0.5:1.5` would.
  const std::string offline_summary =
      exporter::summary_json(noise::NoiseAnalysis(model));
  trace::OsntReader reader(dir.path() + "/t.osnt");
  const auto t0 = static_cast<TimeNs>(0.5 * static_cast<double>(kNsPerMs));
  const auto t1 = static_cast<TimeNs>(1.5 * static_cast<double>(kNsPerMs));
  const trace::TraceModel window_model = reader.read_window(t0, t1);
  const std::string offline_window =
      exporter::summary_json(noise::NoiseAnalysis(window_model));

  Server server(options_for(dir.path()));
  ASSERT_TRUE(server.start());

  constexpr std::size_t kThreads = 6;  // >= 4 concurrent clients, mixed query types
  std::vector<std::string> payloads(kThreads);
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      Client client("127.0.0.1", server.port(), Deadline::after(sec(10)));
      const Request req = i % 2 == 0 ? summary_request(static_cast<std::uint64_t>(i + 1))
                                     : window_request(static_cast<std::uint64_t>(i + 1),
                                                      0.5, 1.5);
      const Response resp = client.call(req, Deadline::after(sec(60)));
      if (resp.ok) {
        payloads[i] = resp.payload;
      } else {
        errors[i] = resp.error + ": " + resp.message;
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kThreads; ++i) {
    ASSERT_TRUE(errors[i].empty()) << "client " << i << ": " << errors[i];
    EXPECT_EQ(payloads[i], i % 2 == 0 ? offline_summary : offline_window)
        << "client " << i;
  }

  // Repeat queries must be result-cache hits. Summary answers from the
  // index pre-aggregates without materializing a model, so the model cache
  // is exercised by chart ops: the first decodes and caches the model, a
  // second with a different quantum misses the result cache but reuses the
  // cached model.
  Client client("127.0.0.1", server.port(), Deadline::after(sec(10)));
  ASSERT_TRUE(client.call(summary_request(100), Deadline::after(sec(60))).ok);
  Request chart;
  chart.id = 102;
  chart.op = Op::kChart;
  chart.trace = "t";
  ASSERT_TRUE(client.call(chart, Deadline::after(sec(60))).ok);
  Request chart2 = chart;
  chart2.id = 103;
  chart2.quantum_us = 500;
  ASSERT_TRUE(client.call(chart2, Deadline::after(sec(60))).ok);
  Request metrics_req;
  metrics_req.id = 101;
  metrics_req.op = Op::kMetrics;
  const Response metrics = client.call(metrics_req, Deadline::after(sec(10)));
  ASSERT_TRUE(metrics.ok) << metrics.message;
  const auto doc = parse_json(metrics.payload);
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->find("result_cache"), nullptr);
  ASSERT_NE(doc->find("model_cache"), nullptr);
  EXPECT_GT(doc->find("result_cache")->find("hits")->number, 0.0);
  EXPECT_GT(doc->find("model_cache")->find("hits")->number, 0.0);
  EXPECT_GT(doc->find("requests")->number, 0.0);
  EXPECT_GT(doc->find("latency")->find("samples")->number, 0.0);

  server.stop();
}

TEST(Server, InfoChartAndListRoundTrip) {
  TempDir dir("server_ops");
  const trace::TraceModel model = make_model();
  write_trace(model, dir.path(), "t");
  Server server(options_for(dir.path()));
  ASSERT_TRUE(server.start());
  Client client("127.0.0.1", server.port(), Deadline::after(sec(10)));

  Request list;
  list.id = 1;
  list.op = Op::kList;
  const Response list_resp = client.call(list, Deadline::after(sec(10)));
  ASSERT_TRUE(list_resp.ok) << list_resp.message;
  EXPECT_NE(list_resp.payload.find("\"name\": \"t\""), std::string::npos);

  Request info;
  info.id = 2;
  info.op = Op::kInfo;
  info.trace = "t";
  const Response info_resp = client.call(info, Deadline::after(sec(10)));
  ASSERT_TRUE(info_resp.ok) << info_resp.message;
  const auto info_doc = parse_json(info_resp.payload);
  ASSERT_TRUE(info_doc.has_value());
  EXPECT_EQ(info_doc->find("version")->number, 3.0);
  EXPECT_EQ(info_doc->find("n_cpus")->number, 2.0);
  EXPECT_EQ(static_cast<std::size_t>(info_doc->find("tasks")->array.size()), 3u);

  Request chart;
  chart.id = 3;
  chart.op = Op::kChart;
  chart.trace = "t";
  chart.quantum_us = 100;
  const Response chart_resp = client.call(chart, Deadline::after(sec(60)));
  ASSERT_TRUE(chart_resp.ok) << chart_resp.message;
  const auto chart_doc = parse_json(chart_resp.payload);
  ASSERT_TRUE(chart_doc.has_value());
  EXPECT_EQ(chart_doc->find("task")->string, "rank0");
  EXPECT_GT(chart_doc->find("quanta")->array.size(), 0u);

  // Error paths over the wire.
  Request unknown = summary_request(4);
  unknown.trace = "no_such_trace";
  EXPECT_EQ(client.call(unknown, Deadline::after(sec(10))).error, errc::kUnknownTrace);
  EXPECT_EQ(client.call_line("definitely not json", 5, Deadline::after(sec(10))).error,
            errc::kBadRequest);
  // Hostile numerics: 2^61 microseconds would wrap the ns conversion to 0
  // and divide the daemon by zero; it must come back as a clean error.
  EXPECT_EQ(client
                .call_line(
                    R"({"id":6,"op":"chart","trace":"t","quantum_us":2305843009213693952})",
                    6, Deadline::after(sec(10)))
                .error,
            errc::kBadRequest);

  server.stop();
}

TEST(Server, TimeseriesTopkAndCpuPredicateMatchOfflinePlanner) {
  TempDir dir("server_new_ops");
  const trace::TraceModel model = make_model();
  write_trace(model, dir.path(), "t");

  // The offline truth through the same planner the CLI drives; byte-identity
  // here proves serve and `osn-analyze timeseries/topk/summary --cpu` agree.
  query::Engine engine;
  trace::OsntReader reader(dir.path() + "/t.osnt");
  query::Plan ts_plan;
  ts_plan.aggregate = query::Aggregate::kTimeseries;
  ts_plan.quantum = 100 * kNsPerUs;
  const std::string offline_ts = engine.run(reader, "", ts_plan);
  query::Plan ts_act_plan = ts_plan;
  ts_act_plan.activity = noise::ActivityKind::kPageFault;
  const std::string offline_ts_act = engine.run(reader, "", ts_act_plan);
  query::Plan topk_plan;
  topk_plan.aggregate = query::Aggregate::kTopK;
  topk_plan.k = 2;
  const std::string offline_topk = engine.run(reader, "", topk_plan);
  query::Plan cpu_plan;
  cpu_plan.cpu = 1;
  const std::string offline_cpu = engine.run(reader, "", cpu_plan);

  Server server(options_for(dir.path()));
  ASSERT_TRUE(server.start());
  Client client("127.0.0.1", server.port(), Deadline::after(sec(10)));

  Request ts;
  ts.id = 1;
  ts.op = Op::kTimeseries;
  ts.trace = "t";
  ts.quantum_us = 100;
  const Response ts_resp = client.call(ts, Deadline::after(sec(60)));
  ASSERT_TRUE(ts_resp.ok) << ts_resp.message;
  EXPECT_EQ(ts_resp.payload, offline_ts);

  Request ts_act = ts;
  ts_act.id = 2;
  ts_act.activity = "page_fault";
  const Response ts_act_resp = client.call(ts_act, Deadline::after(sec(60)));
  ASSERT_TRUE(ts_act_resp.ok) << ts_act_resp.message;
  EXPECT_EQ(ts_act_resp.payload, offline_ts_act);
  EXPECT_NE(ts_act_resp.payload.find("\"activity\": \"page_fault\""),
            std::string::npos);

  Request topk;
  topk.id = 3;
  topk.op = Op::kTopK;
  topk.trace = "t";
  topk.k = 2;
  const Response topk_resp = client.call(topk, Deadline::after(sec(60)));
  ASSERT_TRUE(topk_resp.ok) << topk_resp.message;
  EXPECT_EQ(topk_resp.payload, offline_topk);

  Request cpu = summary_request(4);
  cpu.cpu = 1;
  const Response cpu_resp = client.call(cpu, Deadline::after(sec(60)));
  ASSERT_TRUE(cpu_resp.ok) << cpu_resp.message;
  EXPECT_EQ(cpu_resp.payload, offline_cpu);

  // Unexecutable new-op requests come back as clean protocol errors.
  Request bad_activity = ts;
  bad_activity.id = 5;
  bad_activity.activity = "definitely_not_an_activity";
  EXPECT_EQ(client.call(bad_activity, Deadline::after(sec(10))).error,
            errc::kBadRequest);
  EXPECT_EQ(client
                .call_line(R"({"id":6,"op":"topk","trace":"t","k":0})", 6,
                           Deadline::after(sec(10)))
                .error,
            errc::kBadRequest);
  EXPECT_EQ(client
                .call_line(R"({"id":7,"op":"summary","trace":"t","cpu":70000})", 7,
                           Deadline::after(sec(10)))
                .error,
            errc::kBadRequest);

  server.stop();
}

TEST(Server, IdleConnectionsDoNotPinWorkers) {
  TempDir dir("server_idle");
  write_trace(make_model(), dir.path(), "t");
  ServerOptions opts = options_for(dir.path());
  opts.workers = 2;
  opts.max_inflight = 16;
  Server server(opts);
  ASSERT_TRUE(server.start());

  // More idle connections than workers. Under a connection-pins-worker model
  // these would absorb every worker and later clients would hang unserved.
  std::vector<TcpStream> idlers;
  for (int i = 0; i < 6; ++i) {
    TcpStream s =
        TcpStream::connect("127.0.0.1", server.port(), Deadline::after(sec(10)));
    ASSERT_TRUE(s.ok());
    idlers.push_back(std::move(s));
  }

  Client client("127.0.0.1", server.port(), Deadline::after(sec(10)));
  const Response resp = client.call(summary_request(1), Deadline::after(sec(10)));
  EXPECT_TRUE(resp.ok) << resp.error + ": " + resp.message;

  // The idle connections are still live, not shed or starved themselves.
  Request ping;
  ping.id = 2;
  ping.op = Op::kPing;
  ASSERT_TRUE(idlers[0].send_all(ping.to_line() + "\n", Deadline::after(sec(10))));
  const auto line = idlers[0].recv_line(Deadline::after(sec(10)));
  ASSERT_TRUE(line.has_value());
  const auto pong = parse_response(*line);
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->ok) << pong->error + ": " + pong->message;

  server.stop();
}

TEST(Server, PipelinedRequestsAreServedInOrder) {
  TempDir dir("server_pipeline");
  write_trace(make_model(), dir.path(), "t");
  Server server(options_for(dir.path()));
  ASSERT_TRUE(server.start());

  // Two requests in one write: the second arrives buffered behind the first,
  // where poll(2) cannot see it — the server must drain it anyway.
  TcpStream s = TcpStream::connect("127.0.0.1", server.port(), Deadline::after(sec(10)));
  ASSERT_TRUE(s.ok());
  Request first;
  first.id = 1;
  first.op = Op::kPing;
  Request second = summary_request(2);
  ASSERT_TRUE(s.send_all(first.to_line() + "\n" + second.to_line() + "\n",
                         Deadline::after(sec(10))));
  for (std::uint64_t expect_id = 1; expect_id <= 2; ++expect_id) {
    const auto line = s.recv_line(Deadline::after(sec(30)));
    ASSERT_TRUE(line.has_value()) << "response " << expect_id;
    const auto resp = parse_response(*line);
    ASSERT_TRUE(resp.has_value());
    EXPECT_TRUE(resp->ok) << resp->error + ": " + resp->message;
    EXPECT_EQ(resp->id, expect_id);
  }

  server.stop();
}

TEST(Server, DeadlineExceededIsReported) {
  TempDir dir("server_deadline");
  write_trace(make_model(), dir.path(), "t");
  Server server(options_for(dir.path()));
  ASSERT_TRUE(server.start());
  Client client("127.0.0.1", server.port(), Deadline::after(sec(10)));

  Request req = summary_request(1);
  req.deadline = 0;  // already expired at the first stage boundary
  const Response resp = client.call(req, Deadline::after(sec(10)));
  ASSERT_FALSE(resp.ok);
  EXPECT_EQ(resp.error, errc::kDeadlineExceeded);
  EXPECT_GE(server.metrics().deadline_exceeded(), 1u);

  // A ping stalling past its budget also dies by deadline.
  Request ping;
  ping.id = 2;
  ping.op = Op::kPing;
  ping.stall = sec(5);
  ping.deadline = 50 * kNsPerMs;
  const Response ping_resp = client.call(ping, Deadline::after(sec(10)));
  ASSERT_FALSE(ping_resp.ok);
  EXPECT_EQ(ping_resp.error, errc::kDeadlineExceeded);

  server.stop();
}

TEST(Server, ShedsWhenAtCapacity) {
  TempDir dir("server_shed");
  write_trace(make_model(), dir.path(), "t");
  ServerOptions opts = options_for(dir.path());
  opts.workers = 2;
  opts.max_inflight = 2;
  Server server(opts);
  ASSERT_TRUE(server.start());

  // Two connections stall inside ping, filling both inflight slots.
  std::vector<std::thread> stallers;
  std::atomic<int> completed{0};
  for (int i = 0; i < 2; ++i) {
    stallers.emplace_back([&, i] {
      Client client("127.0.0.1", server.port(), Deadline::after(sec(10)));
      Request ping;
      ping.id = static_cast<std::uint64_t>(i + 1);
      ping.op = Op::kPing;
      ping.stall = sec(3);
      const Response resp = client.call(ping, Deadline::after(sec(30)));
      EXPECT_TRUE(resp.ok) << resp.message;
      completed.fetch_add(1);
    });
  }
  // Wait until both stalling requests are actually executing.
  const Deadline setup = Deadline::after(sec(20));
  while (server.metrics().requests() < 2 && !setup.expired())
    Deadline::after(5 * kNsPerMs).sleep_remaining();
  ASSERT_GE(server.metrics().requests(), 2u);

  // The third connection must be shed with an explicit overloaded error.
  Client extra("127.0.0.1", server.port(), Deadline::after(sec(10)));
  Request ping;
  ping.id = 9;
  ping.op = Op::kPing;
  const Response shed = extra.call(ping, Deadline::after(sec(30)));
  ASSERT_FALSE(shed.ok);
  EXPECT_EQ(shed.error, errc::kOverloaded);
  EXPECT_GE(server.metrics().shed(), 1u);

  for (auto& t : stallers) t.join();
  EXPECT_EQ(completed.load(), 2);
  server.stop();
}

TEST(Server, GracefulDrainFinishesInflightAndTellsIdleClients) {
  TempDir dir("server_drain");
  write_trace(make_model(), dir.path(), "t");
  Server server(options_for(dir.path()));
  ASSERT_TRUE(server.start());

  // An idle client should be told the server is going away, not just see EOF.
  TcpStream idle = TcpStream::connect("127.0.0.1", server.port(), Deadline::after(sec(10)));
  ASSERT_TRUE(idle.ok());

  // An in-flight stalled ping must still complete (the drain flag cuts the
  // stall short rather than abandoning the request).
  std::thread inflight([&] {
    Client client("127.0.0.1", server.port(), Deadline::after(sec(10)));
    Request ping;
    ping.id = 1;
    ping.op = Op::kPing;
    ping.stall = sec(8);
    const Response resp = client.call(ping, Deadline::after(sec(30)));
    EXPECT_TRUE(resp.ok) << resp.error + ": " + resp.message;
  });
  const Deadline setup = Deadline::after(sec(20));
  while (server.metrics().requests() < 1 && !setup.expired())
    Deadline::after(5 * kNsPerMs).sleep_remaining();

  const TimeNs stop_start = monotonic_now_ns();
  server.stop();
  // Drain must not wait out the full 8 s stall.
  EXPECT_LT(monotonic_now_ns() - stop_start, sec(6));
  inflight.join();

  const auto line = idle.recv_line(Deadline::after(sec(5)));
  ASSERT_TRUE(line.has_value());
  const auto resp = parse_response(*line);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->error, errc::kShuttingDown);
}

TEST(Server, BinaryWireMatchesJsonWireByteForByte) {
  TempDir dir("server_binary");
  write_trace(make_model(), dir.path(), "t");
  Server server(options_for(dir.path()));
  ASSERT_TRUE(server.start());

  Client json("127.0.0.1", server.port(), Deadline::after(sec(10)), Wire::kJson);
  Client binary("127.0.0.1", server.port(), Deadline::after(sec(10)), Wire::kBinary);
  ASSERT_TRUE(json.ok());
  ASSERT_TRUE(binary.ok());

  // Same ops down both wires: payload documents must be byte-identical —
  // OSNB replaces the envelope, never the content.
  std::vector<Request> requests;
  requests.push_back(summary_request(1));
  requests.push_back(window_request(2, 0.5, 1.5));
  Request list;
  list.id = 3;
  list.op = Op::kList;
  requests.push_back(list);
  Request info;
  info.id = 4;
  info.op = Op::kInfo;
  info.trace = "t";
  requests.push_back(info);
  Request topk;
  topk.id = 5;
  topk.op = Op::kTopK;
  topk.trace = "t";
  topk.k = 2;
  requests.push_back(topk);
  Request ping;
  ping.id = 6;
  ping.op = Op::kPing;
  requests.push_back(ping);

  for (const Request& req : requests) {
    const Response via_json = json.call(req, Deadline::after(sec(60)));
    const Response via_binary = binary.call(req, Deadline::after(sec(60)));
    ASSERT_TRUE(via_json.ok) << op_name(req.op) << ": " << via_json.message;
    ASSERT_TRUE(via_binary.ok) << op_name(req.op) << ": " << via_binary.message;
    EXPECT_EQ(via_binary.id, req.id);
    EXPECT_EQ(via_binary.payload, via_json.payload) << op_name(req.op);
  }

  // Error paths cross the binary wire with the same codes.
  Request unknown = summary_request(7);
  unknown.trace = "no_such_trace";
  EXPECT_EQ(binary.call(unknown, Deadline::after(sec(10))).error,
            errc::kUnknownTrace);

  // Both wires show up in the metrics per-wire counters.
  Request metrics_req;
  metrics_req.id = 8;
  metrics_req.op = Op::kMetrics;
  const Response metrics = binary.call(metrics_req, Deadline::after(sec(10)));
  ASSERT_TRUE(metrics.ok) << metrics.message;
  const auto doc = parse_json(metrics.payload);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* net = doc->find("net");
  ASSERT_NE(net, nullptr) << "metrics must carry the net section";
  EXPECT_GE(net->find("requests_json")->number, 6.0);
  EXPECT_GE(net->find("requests_osnb")->number, 7.0);
  EXPECT_GE(net->find("open")->number, 2.0);
  EXPECT_GE(net->find("accepted")->number, 2.0);

  server.stop();
}

TEST(Server, BinaryClientIsShedWithBinaryControlFrame) {
  TempDir dir("server_binary_shed");
  write_trace(make_model(), dir.path(), "t");
  ServerOptions opts = options_for(dir.path());
  opts.max_inflight = 1;
  Server server(opts);
  ASSERT_TRUE(server.start());

  // Fill the only inflight slot with a stalled JSON request, then knock on
  // the binary door: the overloaded response must come back OSNB-framed,
  // not as a JSON line.
  std::thread occupant([&] {
    Client client("127.0.0.1", server.port(), Deadline::after(sec(10)));
    Request stalled;
    stalled.id = 1;
    stalled.op = Op::kPing;
    stalled.stall = sec(3);
    EXPECT_TRUE(client.call(stalled, Deadline::after(sec(30))).ok);
  });
  const Deadline setup = Deadline::after(sec(20));
  while (server.metrics().requests() < 1 && !setup.expired())
    Deadline::after(5 * kNsPerMs).sleep_remaining();

  Client binary("127.0.0.1", server.port(), Deadline::after(sec(10)), Wire::kBinary);
  Request ping;
  ping.id = 2;
  ping.op = Op::kPing;
  const Response shed = binary.call(ping, Deadline::after(sec(30)));
  ASSERT_FALSE(shed.ok);
  EXPECT_EQ(shed.error, errc::kOverloaded);
  EXPECT_GE(server.metrics().shed(), 1u);

  occupant.join();
  server.stop();
}

TEST(Server, PollBackendServesBothWires) {
  TempDir dir("server_poll");
  write_trace(make_model(), dir.path(), "t");
  ServerOptions opts = options_for(dir.path());
  opts.use_poll_backend = true;
  Server server(opts);
  ASSERT_TRUE(server.start());
  EXPECT_STREQ(server.backend(), "poll");

  for (const Wire wire : {Wire::kJson, Wire::kBinary}) {
    Client client("127.0.0.1", server.port(), Deadline::after(sec(10)), wire);
    const Response resp = client.call(summary_request(1), Deadline::after(sec(60)));
    EXPECT_TRUE(resp.ok) << wire_name(wire) << ": " << resp.error + ": " + resp.message;
  }

  server.stop();
}

TEST(Server, IdleTimeoutReapsQuietConnections) {
  TempDir dir("server_idle_timeout");
  write_trace(make_model(), dir.path(), "t");
  ServerOptions opts = options_for(dir.path());
  opts.idle_timeout = 100 * kNsPerMs;
  Server server(opts);
  ASSERT_TRUE(server.start());

  TcpStream quiet =
      TcpStream::connect("127.0.0.1", server.port(), Deadline::after(sec(10)));
  ASSERT_TRUE(quiet.ok());
  // The server closes the idle connection; the client sees EOF, no goodbye.
  EXPECT_FALSE(quiet.recv_line(Deadline::after(sec(10))).has_value());
  EXPECT_FALSE(quiet.ok());

  // An active client on the same server is untouched.
  Client active("127.0.0.1", server.port(), Deadline::after(sec(10)));
  EXPECT_TRUE(active.call(summary_request(1), Deadline::after(sec(60))).ok);

  server.stop();
}

}  // namespace
}  // namespace osn::serve
