// Scheduler: fairness, wakeup preemption, affinity, rebalancing, migration,
// and the wakeup/sleep race.
#include <gtest/gtest.h>

#include "kernel_helpers.hpp"

namespace osn::kernel {
namespace {

using osn::testing::compute_program;
using osn::testing::count_events;
using osn::testing::fixed_models;
using osn::testing::KernelRun;
using osn::testing::ScriptProgram;
using trace::EventType;

TEST(KernelSched, TwoTasksShareOneCpuFairly) {
  NodeConfig cfg;
  cfg.n_cpus = 1;
  KernelRun run(cfg);
  const Pid a = run.kernel->spawn("a", compute_program(ms(200), 1), true, 0);
  const Pid b = run.kernel->spawn("b", compute_program(ms(200), 1), true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(30));
  EXPECT_EQ(run.kernel->task(a).state, TaskState::kExited);
  EXPECT_EQ(run.kernel->task(b).state, TaskState::kExited);
  // 400 ms of combined work on one CPU: finishes shortly after 400 ms, and
  // interleaving implies both ran in slices (each got preempted).
  EXPECT_GE(run.kernel->now(), ms(400));
  EXPECT_LT(run.kernel->now(), ms(440));
  EXPECT_GT(run.kernel->task(a).preempt_count, 2u);
  EXPECT_GT(run.kernel->task(b).preempt_count, 2u);
}

TEST(KernelSched, TasksSpreadAcrossCpus) {
  NodeConfig cfg;
  cfg.n_cpus = 4;
  KernelRun run(cfg);
  std::vector<Pid> pids;
  for (int i = 0; i < 4; ++i)
    pids.push_back(run.kernel->spawn("t" + std::to_string(i),
                                     compute_program(ms(50), 1), true,
                                     static_cast<CpuId>(i)));
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  // Four 50 ms jobs on four CPUs finish in ~50 ms, not 200 ms.
  EXPECT_LT(run.kernel->now(), ms(60));
}

TEST(KernelSched, RebalancePullsFromOverloadedCpu) {
  NodeConfig cfg;
  cfg.n_cpus = 2;
  KernelRun run(cfg);
  // Three tasks piled on CPU 0; CPU 1 idle -> its rebalance pull must move one.
  for (int i = 0; i < 3; ++i)
    run.kernel->spawn("t" + std::to_string(i), compute_program(ms(300), 1), true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(30));
  const auto model = run.finish();
  EXPECT_GE(count_events(model, EventType::kSchedMigrate), 1u);
  // With balancing, 900 ms of work on 2 CPUs takes ~450-650 ms, not 900.
  EXPECT_LT(run.kernel->now(), ms(700));
}

TEST(KernelSched, PinnedTaskNeverMigrates) {
  NodeConfig cfg;
  cfg.n_cpus = 2;
  KernelRun run(cfg);
  // events/N daemons are pinned; overload CPU 0 to tempt the balancer.
  for (int i = 0; i < 3; ++i)
    run.kernel->spawn("t" + std::to_string(i), compute_program(ms(100), 1), true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(30));
  for (const Pid events_pid : run.kernel->events_pids()) {
    const Task& t = run.kernel->task(events_pid);
    EXPECT_EQ(t.cpu, t.pinned);
    EXPECT_EQ(t.migration_count, 0u);
  }
}

TEST(KernelSched, KthreadWakePreemptsRunningApp) {
  // The events daemon (period 100 ms, fixed) must preempt the rank sharing
  // its CPU: involuntary switches with prev_runnable set.
  NodeConfig cfg;
  cfg.n_cpus = 1;
  KernelRun run(cfg);
  const Pid pid = run.kernel->spawn("rank", compute_program(ms(500), 1), true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(30));
  EXPECT_GT(run.kernel->task(pid).preempt_count, 2u);
  const auto model = run.finish();
  bool app_preempted_by_events = false;
  for (const auto& rec : model.cpu_events(0)) {
    if (static_cast<EventType>(rec.event) != EventType::kSchedSwitch) continue;
    const auto sw = trace::unpack_switch(rec.arg);
    if (sw.prev == pid && sw.prev_runnable && model.task_name(sw.next).starts_with("events"))
      app_preempted_by_events = true;
  }
  EXPECT_TRUE(app_preempted_by_events);
}

TEST(KernelSched, SleepingTaskWakesOnTimerTick) {
  KernelRun run;
  run.kernel->spawn(
      "t", std::make_unique<ScriptProgram>(std::vector<Action>{ActSleep{ms(25)}}),
      true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  // nanosleep(25 ms) wakes at the first tick >= expiry: between 25 and 36 ms.
  EXPECT_GE(run.kernel->now(), ms(25));
  EXPECT_LE(run.kernel->now(), ms(37));
}

TEST(KernelSched, WakeRaceAbortsSleepInPlace) {
  // Two tasks hit a 2-party barrier nearly simultaneously: the waiter can be
  // woken before it is switched out. Regression test for the TASK_WAKING
  // race — the run must complete without tripping state assertions.
  NodeConfig cfg;
  cfg.n_cpus = 2;
  KernelRun run(cfg);
  for (int i = 0; i < 2; ++i) {
    std::vector<Action> script;
    for (int k = 0; k < 50; ++k) {
      script.push_back(ActCompute{us(10)});
      script.push_back(ActBarrier{static_cast<std::uint32_t>(k), 2});
    }
    run.kernel->spawn("t" + std::to_string(i),
                      std::make_unique<ScriptProgram>(std::move(script)), true,
                      static_cast<CpuId>(i));
  }
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  EXPECT_EQ(run.kernel->live_app_count(), 0u);
  EXPECT_EQ(run.finish().validate(), "");
}

TEST(KernelSched, VoluntarySwitchNotMarkedRunnable) {
  KernelRun run;
  run.kernel->spawn(
      "t", std::make_unique<ScriptProgram>(std::vector<Action>{ActSleep{ms(15)}}),
      true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  bool found_voluntary = false;
  for (const auto& rec : model.cpu_events(0)) {
    if (static_cast<EventType>(rec.event) != EventType::kSchedSwitch) continue;
    const auto sw = trace::unpack_switch(rec.arg);
    if (model.task_name(sw.prev) == "t" && !sw.prev_runnable) found_voluntary = true;
  }
  EXPECT_TRUE(found_voluntary);
}

TEST(KernelSched, ReschedIpiDeliveredForCrossCpuWake) {
  NodeConfig cfg;
  cfg.n_cpus = 2;
  KernelRun run(cfg);
  // Rank on CPU 1 sleeps; its wake comes from CPU 1's own timer softirq, but
  // the events daemon activations on the *other* CPU force cross-CPU checks.
  run.kernel->spawn("busy", compute_program(ms(300), 1), true, 1);
  run.kernel->spawn(
      "s", std::make_unique<ScriptProgram>(std::vector<Action>{
               ActCompute{ms(5)}, ActSleep{ms(30)}, ActCompute{ms(5)}}),
      true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(30));
  const auto model = run.finish();
  std::size_t ipis = 0;
  for (CpuId c = 0; c < model.cpu_count(); ++c)
    for (const auto& rec : model.cpu_events(c))
      if (static_cast<EventType>(rec.event) == EventType::kIrqEntry &&
          rec.arg == static_cast<std::uint64_t>(trace::IrqVector::kResched))
        ++ipis;
  EXPECT_GE(ipis, 1u);
}

TEST(KernelSched, ScheduleFunctionShortAndConstant) {
  // §IV-C: schedule() overhead "negligible and constant". With the fixed
  // test model the schedule frames are exactly 200 ns.
  KernelRun run;
  run.kernel->spawn("a", compute_program(ms(50), 2), true, 0);
  run.kernel->spawn("b", compute_program(ms(50), 2), true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(30));
  const auto model = run.finish();
  TimeNs entry_ts = 0;
  for (const auto& rec : model.cpu_events(0)) {
    const auto t = static_cast<EventType>(rec.event);
    if (t == EventType::kScheduleEntry) entry_ts = rec.timestamp;
    if (t == EventType::kScheduleExit) {
      EXPECT_EQ(rec.timestamp - entry_ts, 200u);
    }
  }
}

}  // namespace
}  // namespace osn::kernel
