#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "stats/distributions.hpp"
#include "stats/percentile.hpp"

namespace osn::stats {
namespace {

TEST(ExactQuantile, SingleElement) {
  EXPECT_EQ(exact_quantile({42.0}, 0.0), 42.0);
  EXPECT_EQ(exact_quantile({42.0}, 0.5), 42.0);
  EXPECT_EQ(exact_quantile({42.0}, 1.0), 42.0);
}

TEST(ExactQuantile, EndpointsAreMinMax) {
  std::vector<double> data{5, 1, 9, 3};
  EXPECT_EQ(exact_quantile(data, 0.0), 1.0);
  EXPECT_EQ(exact_quantile(data, 1.0), 9.0);
}

TEST(ExactQuantile, MedianInterpolates) {
  EXPECT_DOUBLE_EQ(exact_quantile({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(exact_quantile({1, 2, 3}, 0.5), 2.0);
}

TEST(ExactQuantile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(exact_quantile({9, 1, 5}, 0.5), 5.0);
}

TEST(ExactQuantile, EmptyDies) {
  EXPECT_DEATH(exact_quantile({}, 0.5), "empty");
}

TEST(P2Quantile, ExactForFewSamples) {
  P2Quantile p(0.5);
  p.add(3);
  p.add(1);
  p.add(2);
  EXPECT_DOUBLE_EQ(p.value(), 2.0);
}

TEST(P2Quantile, EmptyIsZero) {
  P2Quantile p(0.9);
  EXPECT_EQ(p.value(), 0.0);
}

TEST(P2Quantile, InvalidQuantileDies) {
  EXPECT_DEATH(P2Quantile(0.0), "");
  EXPECT_DEATH(P2Quantile(1.0), "");
}

// Property sweep: the P² estimate tracks the exact quantile across
// distribution shapes and target quantiles — the situation the noise
// analyzer faces with long-tailed duration data.
class P2Accuracy : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(P2Accuracy, TracksExactQuantile) {
  const double q = std::get<0>(GetParam());
  const int shape = std::get<1>(GetParam());
  Xoshiro256 rng(static_cast<std::uint64_t>(shape) * 1000 + 1);

  P2Quantile p2(q);
  std::vector<double> data;
  for (int i = 0; i < 50'000; ++i) {
    double v = 0;
    switch (shape) {
      case 0: v = rng.uniform01(); break;
      case 1: v = sample_lognormal(rng, 2'500, 0.5); break;
      case 2: v = sample_exponential(rng, 1'000); break;
      case 3: v = sample_normal(rng) * 10 + 100; break;
    }
    p2.add(v);
    data.push_back(v);
  }
  const double exact = exact_quantile(data, q);
  const double spread = exact_quantile(data, 0.95) - exact_quantile(data, 0.05);
  EXPECT_NEAR(p2.value(), exact, 0.05 * spread + 1e-9);
}

std::string p2_case_name(const ::testing::TestParamInfo<std::tuple<double, int>>& info) {
  static const char* const kShapeNames[] = {"uniform", "lognormal", "exponential",
                                            "normal"};
  // Built piecewise: gcc 12's -O3 -Wrestrict pass false-positives on the
  // temporary chain std::string + ... + "literal" (PR 105651).
  std::string name = "q";
  name += std::to_string(static_cast<int>(std::get<0>(info.param) * 100));
  name += '_';
  name += kShapeNames[std::get<1>(info.param)];
  return name;
}

INSTANTIATE_TEST_SUITE_P(QuantilesAndShapes, P2Accuracy,
                         ::testing::Combine(::testing::Values(0.25, 0.5, 0.9, 0.99),
                                            ::testing::Values(0, 1, 2, 3)),
                         p2_case_name);

TEST(P2Quantile, CountTracksAdds) {
  P2Quantile p(0.5);
  for (int i = 0; i < 17; ++i) p.add(i);
  EXPECT_EQ(p.count(), 17u);
}

}  // namespace
}  // namespace osn::stats
