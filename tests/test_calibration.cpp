// Calibration machinery: the paper reference tables and the fitted duration
// models behind each application.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/summary.hpp"
#include "workloads/calibration.hpp"

namespace osn::workloads {
namespace {

TEST(PaperData, FiveApplications) {
  const auto& all = paper_data();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].name, "AMG");
  EXPECT_EQ(all[4].name, "UMT");
}

TEST(PaperData, TextQuotedValuesTranscribed) {
  // Spot-check against the paper's text and tables.
  EXPECT_EQ(paper_data(SequoiaApp::kAmg).page_fault.freq, 1693);
  EXPECT_EQ(paper_data(SequoiaApp::kAmg).page_fault.avg_ns, 4380);
  EXPECT_EQ(paper_data(SequoiaApp::kAmg).page_fault.max_ns, 69398061);
  EXPECT_EQ(paper_data(SequoiaApp::kAmg).pct_page_fault, 82.4);
  EXPECT_EQ(paper_data(SequoiaApp::kUmt).pct_page_fault, 86.7);
  EXPECT_EQ(paper_data(SequoiaApp::kLammps).pct_preemption, 80.2);
  EXPECT_EQ(paper_data(SequoiaApp::kSphot).pct_preemption, 24.7);
  EXPECT_EQ(paper_data(SequoiaApp::kIrs).pct_preemption, 27.1);
  EXPECT_EQ(paper_data(SequoiaApp::kLammps).net_tx.freq, 2);
  EXPECT_EQ(paper_data(SequoiaApp::kUmt).timer_softirq.avg_ns, 3364);
}

TEST(PaperData, BreakdownPercentagesSumToHundred) {
  for (const auto& d : paper_data()) {
    const double sum = d.pct_periodic + d.pct_page_fault + d.pct_scheduling +
                       d.pct_preemption + d.pct_io;
    EXPECT_NEAR(sum, 100.0, 0.5) << d.name;
  }
}

TEST(PaperData, TimerFrequenciesAreTickRate) {
  for (const auto& d : paper_data()) {
    EXPECT_EQ(d.timer_irq.freq, 100) << d.name;
    EXPECT_EQ(d.timer_softirq.freq, 100) << d.name;
  }
}

class CalibratedModelsTest : public ::testing::TestWithParam<SequoiaApp> {};

TEST_P(CalibratedModelsTest, TimerModelsMatchTableAverages) {
  const auto models = calibrated_models(GetParam());
  const auto& d = paper_data(GetParam());
  Xoshiro256 rng(1);
  EXPECT_NEAR(models.timer_irq.estimate_mean(rng, 100'000), d.timer_irq.avg_ns,
              d.timer_irq.avg_ns * 0.06);
  EXPECT_NEAR(models.timer_softirq.estimate_mean(rng, 100'000), d.timer_softirq.avg_ns,
              d.timer_softirq.avg_ns * 0.08);
}

TEST_P(CalibratedModelsTest, NetModelsMatchTableAverages) {
  const auto models = calibrated_models(GetParam());
  const auto& d = paper_data(GetParam());
  Xoshiro256 rng(2);
  EXPECT_NEAR(models.net_rx.estimate_mean(rng, 100'000), d.net_rx.avg_ns,
              d.net_rx.avg_ns * 0.08);
  EXPECT_NEAR(models.net_tx.estimate_mean(rng, 100'000), d.net_tx.avg_ns,
              d.net_tx.avg_ns * 0.08);
}

TEST_P(CalibratedModelsTest, ModelsRespectTableMinMax) {
  const auto models = calibrated_models(GetParam());
  const auto& d = paper_data(GetParam());
  Xoshiro256 rng(3);
  for (int i = 0; i < 20'000; ++i) {
    EXPECT_GE(models.timer_softirq.sample(rng), static_cast<DurNs>(d.timer_softirq.min_ns));
    EXPECT_LE(models.timer_softirq.sample(rng), static_cast<DurNs>(d.timer_softirq.max_ns));
  }
}

TEST_P(CalibratedModelsTest, CombinedPageFaultMeanMatchesTableOne) {
  const auto models = calibrated_models(GetParam());
  const auto params = calibrated_rank_params(GetParam(), sec(10));
  const auto& d = paper_data(GetParam());
  Xoshiro256 rng(4);
  // Mix anon and cow means by the workload's cow_fraction.
  const double anon = models.pf_minor_anon.estimate_mean(rng, 120'000);
  const double cow = models.pf_cow.estimate_mean(rng, 120'000);
  const double combined = anon * (1 - params.cow_fraction) + cow * params.cow_fraction;
  EXPECT_NEAR(combined, d.page_fault.avg_ns, d.page_fault.avg_ns * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Apps, CalibratedModelsTest,
                         ::testing::Values(SequoiaApp::kAmg, SequoiaApp::kIrs,
                                           SequoiaApp::kLammps, SequoiaApp::kSphot,
                                           SequoiaApp::kUmt),
                         [](const ::testing::TestParamInfo<SequoiaApp>& pinfo) {
                           return app_name(pinfo.param);
                         });

TEST(CalibratedModels, IrsRebalanceCompactUmtWide) {
  // Fig 6: IRS compact around 1.8 us; UMT wide with mean 3.36 us.
  Xoshiro256 rng(5);
  const auto irs = calibrated_models(SequoiaApp::kIrs).rebalance;
  const auto umt = calibrated_models(SequoiaApp::kUmt).rebalance;
  stats::StreamingSummary irs_s, umt_s;
  for (int i = 0; i < 50'000; ++i) {
    irs_s.add(static_cast<double>(irs.sample(rng)));
    umt_s.add(static_cast<double>(umt.sample(rng)));
  }
  EXPECT_NEAR(irs_s.mean(), 1850, 150);
  EXPECT_NEAR(umt_s.mean(), 3360, 350);
  // Spread: UMT's coefficient of variation far exceeds IRS's.
  EXPECT_GT(umt_s.stddev() / umt_s.mean(), 2.0 * irs_s.stddev() / irs_s.mean());
}

TEST(CalibratedParams, LammpsIsEdgeLoaded) {
  const auto p = calibrated_rank_params(SequoiaApp::kLammps, sec(10));
  EXPECT_GT(p.init_pages, 0u);
  EXPECT_GT(p.final_pages, 0u);
  // Steady trickle is a small share of the total.
  EXPECT_LT(p.steady_faults_per_sec, 0.2 * paper_data(SequoiaApp::kLammps).page_fault.freq);
}

TEST(CalibratedParams, AmgHasAccumulationBursts) {
  const auto p = calibrated_rank_params(SequoiaApp::kAmg, sec(10));
  EXPECT_GT(p.burst_period, 0u);
  EXPECT_GT(p.burst_pages, 0u);
}

TEST(CalibratedParams, OnlyUmtHasHelpers) {
  for (std::size_t i = 0; i < kSequoiaAppCount; ++i) {
    const auto app = static_cast<SequoiaApp>(i);
    const auto p = calibrated_rank_params(app, sec(10));
    if (app == SequoiaApp::kUmt) {
      EXPECT_GT(p.helper_count, 0u);
    } else {
      EXPECT_EQ(p.helper_count, 0u);
    }
  }
}

TEST(CalibratedParams, OnlySphotSkipsBarriers) {
  for (std::size_t i = 0; i < kSequoiaAppCount; ++i) {
    const auto app = static_cast<SequoiaApp>(i);
    const auto p = calibrated_rank_params(app, sec(10));
    if (app == SequoiaApp::kSphot) {
      EXPECT_EQ(p.iters_per_barrier, 0u);
    } else {
      EXPECT_GT(p.iters_per_barrier, 0u);
    }
  }
}

}  // namespace
}  // namespace osn::workloads
