// TraceCatalog: directory scanning, probe metadata, stat-based invalidation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "serve/catalog.hpp"
#include "serve_helpers.hpp"

namespace osn::serve {
namespace {

using serve::testing::TempDir;
using serve::testing::make_model;
using serve::testing::write_trace;

TEST(Catalog, ListsTracesWithMetadata) {
  TempDir dir("catalog_list");
  const trace::TraceModel model = make_model();
  write_trace(model, dir.path(), "alpha");
  write_trace(model, dir.path(), "beta");
  // Non-.osnt files are ignored.
  std::ofstream(dir.path() + "/README.txt") << "not a trace\n";

  TraceCatalog catalog(dir.path());
  const auto entries = catalog.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "alpha");
  EXPECT_EQ(entries[1].name, "beta");
  for (const auto& e : entries) {
    EXPECT_TRUE(e.usable());
    EXPECT_EQ(e.version, 3u);
    EXPECT_EQ(e.workload, "test");
    EXPECT_EQ(e.n_cpus, 2u);
    EXPECT_EQ(e.records, model.total_events());
    EXPECT_GT(e.chunks, 1u);
  }
}

TEST(Catalog, UnreadableFileIsListedWithError) {
  TempDir dir("catalog_bad");
  std::ofstream(dir.path() + "/junk.osnt") << "this is not OSNT at all";
  TraceCatalog catalog(dir.path());
  const auto entries = catalog.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_FALSE(entries[0].usable());
  EXPECT_FALSE(entries[0].error.empty());
  EXPECT_EQ(catalog.open("junk").reader, nullptr);
}

TEST(Catalog, OpenLeasesSharedReader) {
  TempDir dir("catalog_open");
  write_trace(make_model(), dir.path(), "t");
  TraceCatalog catalog(dir.path());
  const Lease a = catalog.open("t");
  const Lease b = catalog.open("t");
  ASSERT_NE(a.reader, nullptr);
  EXPECT_EQ(a.reader.get(), b.reader.get());  // same probe, shared reader
  EXPECT_EQ(a.entry.id(), b.entry.id());
  EXPECT_EQ(catalog.open("nonexistent").reader, nullptr);
  // Path escapes are refused, not resolved.
  EXPECT_EQ(catalog.open("../t").reader, nullptr);
}

TEST(Catalog, RefreshPicksUpNewAndRemovedFiles) {
  TempDir dir("catalog_refresh");
  write_trace(make_model(), dir.path(), "first");
  TraceCatalog catalog(dir.path());
  ASSERT_EQ(catalog.list().size(), 1u);

  write_trace(make_model(), dir.path(), "second");
  catalog.refresh();
  EXPECT_EQ(catalog.list().size(), 2u);

  std::remove((dir.path() + "/first.osnt").c_str());
  catalog.refresh();
  const auto entries = catalog.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "second");
}

TEST(Catalog, RewrittenFileGetsNewIdentity) {
  TempDir dir("catalog_rewrite");
  write_trace(make_model(100), dir.path(), "t");
  TraceCatalog catalog(dir.path());
  const Lease before = catalog.open("t");
  ASSERT_NE(before.reader, nullptr);

  // Rewrite with different content (different size => stamp must change even
  // if the mtime granularity is coarse).
  write_trace(make_model(150), dir.path(), "t");
  const Lease after = catalog.open("t");
  ASSERT_NE(after.reader, nullptr);
  EXPECT_NE(after.entry.id(), before.entry.id());
  EXPECT_NE(after.reader.get(), before.reader.get());
  // The old lease still works: its reader outlives the catalog slot.
  EXPECT_EQ(before.reader->read_all().total_events(), make_model(100).total_events());
}

}  // namespace
}  // namespace osn::serve
