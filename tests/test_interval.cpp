// Interval building: entry/exit pairing, nested-event (self vs inclusive)
// resolution, preemption derivation, communication windows.
#include <gtest/gtest.h>

#include <algorithm>

#include "noise/interval.hpp"
#include "trace_builder.hpp"

namespace osn::noise {
namespace {

using osn::testing::TraceBuilder;
using trace::EventType;

TEST(Interval, SimplePairBecomesInterval) {
  auto model = TraceBuilder(1)
                   .task(1, "app", true)
                   .pair(0, 100, 2'278, 1, EventType::kIrqEntry,
                         static_cast<std::uint64_t>(trace::IrqVector::kTimer))
                   .build();
  const IntervalSet set = build_intervals(model);
  ASSERT_EQ(set.kernel.size(), 1u);
  const Interval& iv = set.kernel[0];
  EXPECT_EQ(iv.kind, ActivityKind::kTimerIrq);
  EXPECT_EQ(iv.task, 1u);
  EXPECT_EQ(iv.start, 100u);
  EXPECT_EQ(iv.end, 2'278u);
  EXPECT_EQ(iv.inclusive, 2'178u);
  EXPECT_EQ(iv.self, 2'178u);
  EXPECT_EQ(iv.depth, 0u);
}

TEST(Interval, NestedChildSubtractedFromParentSelf) {
  // The paper's canonical case: a timer interrupt inside a tasklet.
  TraceBuilder b(1);
  b.task(1, "app", true);
  b.ev(0, 1'000, 1, EventType::kTaskletEntry,
       static_cast<std::uint64_t>(trace::TaskletId::kNetRx));
  b.ev(0, 1'500, 1, EventType::kIrqEntry,
       static_cast<std::uint64_t>(trace::IrqVector::kTimer));
  b.ev(0, 3'500, 1, EventType::kIrqExit,
       static_cast<std::uint64_t>(trace::IrqVector::kTimer));
  b.ev(0, 6'000, 1, EventType::kTaskletExit,
       static_cast<std::uint64_t>(trace::TaskletId::kNetRx));
  const IntervalSet set = build_intervals(b.build());
  ASSERT_EQ(set.kernel.size(), 2u);
  // Sorted by start: tasklet first.
  const Interval& tasklet = set.kernel[0];
  const Interval& irq = set.kernel[1];
  EXPECT_EQ(tasklet.kind, ActivityKind::kNetRxTasklet);
  EXPECT_EQ(tasklet.inclusive, 5'000u);
  EXPECT_EQ(tasklet.self, 3'000u);  // 5000 - nested 2000
  EXPECT_EQ(irq.kind, ActivityKind::kTimerIrq);
  EXPECT_EQ(irq.self, 2'000u);
  EXPECT_EQ(irq.depth, 1u);
  // Self times sum to wall time: no double counting.
  EXPECT_EQ(tasklet.self + irq.self, tasklet.inclusive);
}

TEST(Interval, DoubleNestingResolvesEachLevel) {
  TraceBuilder b(1);
  b.task(1, "app", true);
  b.ev(0, 0, 1, EventType::kSyscallEntry, 0);
  b.ev(0, 100, 1, EventType::kSoftirqEntry, 1);
  b.ev(0, 200, 1, EventType::kIrqEntry, 0);
  b.ev(0, 300, 1, EventType::kIrqExit, 0);
  b.ev(0, 500, 1, EventType::kSoftirqExit, 1);
  b.ev(0, 1'000, 1, EventType::kSyscallExit, 0);
  const IntervalSet set = build_intervals(b.build());
  ASSERT_EQ(set.kernel.size(), 3u);
  EXPECT_EQ(set.kernel[0].self, 600u);  // syscall: 1000 - 400 (softirq)
  EXPECT_EQ(set.kernel[1].self, 300u);  // softirq: 400 - 100 (irq)
  EXPECT_EQ(set.kernel[2].self, 100u);  // irq
}

TEST(Interval, SequentialSiblingsBothChargedToParent) {
  TraceBuilder b(1);
  b.task(1, "app", true);
  b.ev(0, 0, 1, EventType::kSyscallEntry, 0);
  b.pair(0, 100, 200, 1, EventType::kIrqEntry, 0);
  b.pair(0, 300, 450, 1, EventType::kIrqEntry, 0);
  b.ev(0, 1'000, 1, EventType::kSyscallExit, 0);
  const IntervalSet set = build_intervals(b.build());
  ASSERT_EQ(set.kernel.size(), 3u);
  EXPECT_EQ(set.kernel[0].self, 1'000u - 100u - 150u);
}

TEST(Interval, PreemptionDerivedFromSwitches) {
  TraceBuilder b(1);
  b.task(1, "app", true).task(9, "rpciod", false, true);
  // app switched out runnable at t=1000, rpciod runs, app back at t=3215.
  b.ev(0, 1'000, 1, EventType::kSchedSwitch, trace::pack_switch({1, 9, true}));
  b.ev(0, 3'215, 9, EventType::kSchedSwitch, trace::pack_switch({9, 1, false}));
  const IntervalSet set = build_intervals(b.build());
  ASSERT_EQ(set.preemption.size(), 1u);
  const Interval& p = set.preemption[0];
  EXPECT_EQ(p.kind, ActivityKind::kPreemption);
  EXPECT_EQ(p.task, 1u);
  EXPECT_EQ(p.detail, 9u);  // preemptor
  EXPECT_EQ(p.self, 2'215u);
}

TEST(Interval, VoluntarySwitchIsNotPreemption) {
  TraceBuilder b(1);
  b.task(1, "app", true);
  b.ev(0, 1'000, 1, EventType::kSchedSwitch, trace::pack_switch({1, 0, false}));
  b.ev(0, 9'000, 0, EventType::kSchedSwitch, trace::pack_switch({0, 1, false}));
  EXPECT_TRUE(build_intervals(b.build()).preemption.empty());
}

TEST(Interval, PreemptionClosesOnOtherCpu) {
  // Preempted on CPU 0, migrated, resumes on CPU 1.
  TraceBuilder b(2);
  b.task(1, "app", true).task(9, "rpciod", false, true);
  b.ev(0, 1'000, 1, EventType::kSchedSwitch, trace::pack_switch({1, 9, true}));
  b.ev(1, 5'000, 0, EventType::kSchedSwitch, trace::pack_switch({0, 1, false}));
  const IntervalSet set = build_intervals(b.build());
  ASSERT_EQ(set.preemption.size(), 1u);
  EXPECT_EQ(set.preemption[0].inclusive, 4'000u);
  EXPECT_EQ(set.preemption[0].cpu, 0u);  // where it was preempted
}

TEST(Interval, DanglingPreemptionClosedAtTraceEnd) {
  TraceBuilder b(1);
  b.task(1, "app", true).task(9, "d", false, true);
  b.ev(0, 1'000, 1, EventType::kSchedSwitch, trace::pack_switch({1, 9, true}));
  const IntervalSet set = build_intervals(b.build(10'000));
  ASSERT_EQ(set.preemption.size(), 1u);
  EXPECT_EQ(set.preemption[0].end, 10'000u);
}

TEST(Interval, KernelDaemonPreemptionNotTracked) {
  // Only application tasks get preemption intervals.
  TraceBuilder b(1);
  b.task(8, "kd1", false, true).task(9, "kd2", false, true);
  b.ev(0, 1'000, 8, EventType::kSchedSwitch, trace::pack_switch({8, 9, true}));
  b.ev(0, 2'000, 9, EventType::kSchedSwitch, trace::pack_switch({9, 8, false}));
  EXPECT_TRUE(build_intervals(b.build()).preemption.empty());
}

TEST(Interval, CommWindowsFromBarrierMarks) {
  TraceBuilder b(1);
  b.task(1, "app", true);
  b.ev(0, 1'000, 1, EventType::kAppMark,
       static_cast<std::uint64_t>(trace::AppMark::kBarrierEnter));
  b.ev(0, 5'000, 1, EventType::kAppMark,
       static_cast<std::uint64_t>(trace::AppMark::kBarrierExit));
  const IntervalSet set = build_intervals(b.build());
  ASSERT_EQ(set.comm.size(), 1u);
  EXPECT_EQ(set.comm[0].task, 1u);
  EXPECT_EQ(set.comm[0].start, 1'000u);
  EXPECT_EQ(set.comm[0].end, 5'000u);
}

TEST(Interval, UnclosedCommWindowEndsAtTraceEnd) {
  TraceBuilder b(1);
  b.task(1, "app", true);
  b.ev(0, 1'000, 1, EventType::kAppMark,
       static_cast<std::uint64_t>(trace::AppMark::kBarrierEnter));
  const IntervalSet set = build_intervals(b.build(8'000));
  ASSERT_EQ(set.comm.size(), 1u);
  EXPECT_EQ(set.comm[0].end, 8'000u);
}

TEST(Interval, OutputSortedByStart) {
  TraceBuilder b(2);
  b.task(1, "app", true);
  b.pair(1, 500, 600, 1, EventType::kIrqEntry, 0);
  b.pair(0, 100, 200, 1, EventType::kIrqEntry, 0);
  b.pair(0, 900, 950, 1, EventType::kIrqEntry, 0);
  const IntervalSet set = build_intervals(b.build());
  ASSERT_EQ(set.kernel.size(), 3u);
  EXPECT_LT(set.kernel[0].start, set.kernel[1].start);
  EXPECT_LT(set.kernel[1].start, set.kernel[2].start);
}

TEST(Interval, ActivityOfMapsPaperNames) {
  EXPECT_EQ(activity_of(EventType::kSoftirqEntry,
                        static_cast<std::uint64_t>(trace::SoftirqNr::kTimer)),
            ActivityKind::kTimerSoftirq);
  EXPECT_EQ(activity_of(EventType::kSoftirqEntry,
                        static_cast<std::uint64_t>(trace::SoftirqNr::kSched)),
            ActivityKind::kRebalanceSoftirq);
  EXPECT_EQ(activity_of(EventType::kTaskletEntry,
                        static_cast<std::uint64_t>(trace::TaskletId::kNetTx)),
            ActivityKind::kNetTxTasklet);
  EXPECT_EQ(activity_of(EventType::kPageFaultEntry, 0), ActivityKind::kPageFault);
}

TEST(Interval, UnmatchedExitDies) {
  TraceBuilder b(1);
  b.task(1, "app", true);
  b.ev(0, 100, 1, EventType::kIrqExit, 0);
  auto model = b.build();
  EXPECT_DEATH(build_intervals(model), "exit without entry");
}

TEST(Interval, UnmappedEntryEventDies) {
  // activity_of must abort loudly on an unmapped entry — never fall off the
  // end of the function (UB if the contract check were compiled out).
  EXPECT_DEATH(activity_of(EventType::kSchedSwitch, 0), "unmapped entry event");
  EXPECT_DEATH(activity_of(EventType::kIrqEntry, 999), "unmapped entry event");
  EXPECT_DEATH(activity_of(EventType::kSoftirqEntry,
                           static_cast<std::uint64_t>(trace::SoftirqNr::kBlock)),
               "unmapped entry event");
}

TEST(Interval, MergeKernelShardsOrdersByStartDepthCpu) {
  auto iv = [](TimeNs start, std::uint16_t depth, CpuId cpu) {
    Interval i;
    i.kind = ActivityKind::kTimerIrq;
    i.cpu = cpu;
    i.start = start;
    i.end = start + 10;
    i.depth = depth;
    return i;
  };
  // Same-start ticks on every CPU (the common case: the periodic timer
  // fires on all CPUs at the same tick timestamp) order by cpu.
  std::vector<std::vector<Interval>> shards = {
      {iv(100, 0, 0), iv(100, 1, 0), iv(500, 0, 0)},
      {iv(100, 0, 1), iv(300, 0, 1)},
      {},
      {iv(50, 0, 3)},
  };
  const std::vector<Interval> merged = merge_kernel_shards(shards);
  ASSERT_EQ(merged.size(), 6u);
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end(), interval_before));
  EXPECT_EQ(merged[0].cpu, 3u);
  EXPECT_EQ(merged[1].cpu, 0u);   // (100, depth 0, cpu 0)
  EXPECT_EQ(merged[2].cpu, 1u);   // (100, depth 0, cpu 1)
  EXPECT_EQ(merged[3].depth, 1u);  // (100, depth 1, cpu 0)
  EXPECT_EQ(merged[4].start, 300u);
  EXPECT_EQ(merged[5].start, 500u);
}

}  // namespace
}  // namespace osn::noise
