// CRC-32 equivalence battery: every fast implementation must agree with the
// bytewise oracle on arbitrary lengths, alignments, and split points — the
// properties the v3 chunk verification depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "common/crc32.hpp"

namespace osn {
namespace {

// The classic check value: CRC-32 of "123456789" (IEEE 802.3, reflected,
// init/xorout 0xffffffff — folded into the update functions).
constexpr std::uint32_t kCheck = 0xcbf43926u;
constexpr const char* kCheckInput = "123456789";

TEST(Crc32, KnownVectorBytewise) {
  EXPECT_EQ(crc32_update_bytewise(0, kCheckInput, 9), kCheck);
}

TEST(Crc32, KnownVectorSlice8) {
  EXPECT_EQ(crc32_update_slice8(0, kCheckInput, 9), kCheck);
}

TEST(Crc32, KnownVectorHardware) {
  // Valid even without hardware support: the function falls back to slice8.
  EXPECT_EQ(crc32_update_hardware(0, kCheckInput, 9), kCheck);
}

TEST(Crc32, KnownVectorDispatched) {
  EXPECT_EQ(crc32(kCheckInput, 9), kCheck);
  EXPECT_NE(crc32_impl_name(), nullptr);
}

TEST(Crc32, EmptyInputIsIdentity) {
  EXPECT_EQ(crc32_update_bytewise(0, "", 0), 0u);
  EXPECT_EQ(crc32_update_slice8(0, "", 0), 0u);
  EXPECT_EQ(crc32_update_hardware(0, "", 0), 0u);
  EXPECT_EQ(crc32_update_slice8(0x12345678u, "", 0), 0x12345678u);
}

TEST(Crc32, AllImplsAgreeOnRandomLengthsAndAlignments) {
  std::mt19937_64 rng(42);
  // Slack at the front so the test can slide the start across alignments.
  std::vector<std::uint8_t> buf(64 * 1024 + 64);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng());

  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t align = static_cast<std::size_t>(rng() % 16);
    // Lengths clustered around the small sizes where tail handling lives,
    // plus a spread up to 64 KiB to cross every folding stride.
    const std::size_t len = trial % 3 == 0
                                ? static_cast<std::size_t>(rng() % 70)
                                : static_cast<std::size_t>(rng() % (64 * 1024));
    const std::uint8_t* p = buf.data() + align;
    const std::uint32_t seed = static_cast<std::uint32_t>(rng());

    const std::uint32_t oracle = crc32_update_bytewise(seed, p, len);
    EXPECT_EQ(crc32_update_slice8(seed, p, len), oracle)
        << "slice8 len=" << len << " align=" << align;
    EXPECT_EQ(crc32_update_hardware(seed, p, len), oracle)
        << "hardware len=" << len << " align=" << align;
    EXPECT_EQ(crc32_update(seed, p, len), oracle)
        << "dispatch len=" << len << " align=" << align;
  }
}

TEST(Crc32, SplitUpdatesMatchOneShot) {
  std::mt19937_64 rng(7);
  std::vector<std::uint8_t> buf(8192);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng());

  const std::uint32_t oracle = crc32_update_bytewise(0, buf.data(), buf.size());
  for (int trial = 0; trial < 200; ++trial) {
    // Chop the buffer at 1-4 random points and feed the pieces in order;
    // the chunk writer checksums exactly this way (header bytes, then
    // payload spans as they stream in).
    std::vector<std::size_t> cuts{0, buf.size()};
    const int n_cuts = 1 + static_cast<int>(rng() % 4);
    for (int c = 0; c < n_cuts; ++c)
      cuts.push_back(static_cast<std::size_t>(rng() % (buf.size() + 1)));
    std::sort(cuts.begin(), cuts.end());

    std::uint32_t sliced = 0, hw = 0, dispatched = 0;
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      const std::size_t off = cuts[i], n = cuts[i + 1] - cuts[i];
      sliced = crc32_update_slice8(sliced, buf.data() + off, n);
      hw = crc32_update_hardware(hw, buf.data() + off, n);
      dispatched = crc32_update(dispatched, buf.data() + off, n);
    }
    EXPECT_EQ(sliced, oracle);
    EXPECT_EQ(hw, oracle);
    EXPECT_EQ(dispatched, oracle);
  }
}

TEST(Crc32, HardwareAvailabilityIsConsistentWithImplName) {
  const std::string name = crc32_impl_name();
  if (crc32_hardware_available()) {
    EXPECT_TRUE(name == "clmul" || name == "armv8") << name;
  } else {
    EXPECT_EQ(name, "slice8");
  }
}

}  // namespace
}  // namespace osn
