// Plan-layer unit tests: the shared ms→ns conversion, the pinned bucket-count
// edge cases, and the fingerprint that keys the result cache.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "query/plan.hpp"

namespace osn::query {
namespace {

TEST(NsFromMs, MatchesHistoricalCastInRange) {
  // Every front end used to do static_cast<TimeNs>(ms * 1e6) raw; the shared
  // helper must produce the same nanoseconds so old windows stay
  // byte-identical through the planner.
  for (const double ms : {0.0, 0.5, 1.0, 1.5, 123.456, 1e6, 9.75e9}) {
    const auto ns = ns_from_ms(ms);
    ASSERT_TRUE(ns.has_value()) << ms;
    EXPECT_EQ(*ns, static_cast<TimeNs>(ms * static_cast<double>(kNsPerMs))) << ms;
  }
}

TEST(NsFromMs, RejectsNonFiniteAndNegative) {
  EXPECT_FALSE(ns_from_ms(std::numeric_limits<double>::quiet_NaN()).has_value());
  EXPECT_FALSE(ns_from_ms(std::numeric_limits<double>::infinity()).has_value());
  EXPECT_FALSE(ns_from_ms(-std::numeric_limits<double>::infinity()).has_value());
  EXPECT_FALSE(ns_from_ms(-1.0).has_value());
  EXPECT_FALSE(ns_from_ms(-0.001).has_value());
}

TEST(NsFromMs, SaturatesInsteadOfOverflowing) {
  // ms * 1e6 >= 2^64 made the old cast undefined behaviour; the helper pins
  // it to "the open end of time" instead.
  EXPECT_EQ(ns_from_ms(1e300), kTimeInfinity);
  EXPECT_EQ(ns_from_ms(18446744073709.552), kTimeInfinity);  // just past 2^64 ns
  EXPECT_EQ(ns_from_ms(std::numeric_limits<double>::max()), kTimeInfinity);
}

TEST(WindowFromMs, AppliesValidAndLeavesPlanOnReject) {
  Plan plan;
  EXPECT_TRUE(window_from_ms(plan, 0.5, 1.5));
  EXPECT_EQ(plan.t0, static_cast<TimeNs>(0.5 * 1e6));
  EXPECT_EQ(plan.t1, static_cast<TimeNs>(1.5 * 1e6));

  Plan untouched;
  EXPECT_FALSE(window_from_ms(untouched, 2.0, 2.0));  // empty
  EXPECT_FALSE(window_from_ms(untouched, 3.0, 1.0));  // inverted
  EXPECT_FALSE(window_from_ms(untouched, -1.0, 1.0));
  EXPECT_FALSE(
      window_from_ms(untouched, 0.0, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(untouched.t0, 0u);
  EXPECT_EQ(untouched.t1, kTimeInfinity);
}

TEST(WindowFromMs, SubMillisecondWindowsConvertWithoutCollapsing) {
  // 0.0001 ms is 100 ns — distinct endpoints must stay distinct.
  Plan plan;
  EXPECT_TRUE(window_from_ms(plan, 0.0001, 0.0002));
  EXPECT_EQ(plan.t0, 100u);
  EXPECT_EQ(plan.t1, 200u);
}

TEST(ChartBuckets, PinnedEdgeCases) {
  // The cases every duplicated caller used to get subtly wrong:
  EXPECT_EQ(chart_buckets(0, kNsPerMs), 1u);              // zero-duration trace
  EXPECT_EQ(chart_buckets(1, kNsPerMs), 1u);              // quantum > duration
  EXPECT_EQ(chart_buckets(kNsPerMs - 1, kNsPerMs), 1u);   // just under one quantum
  EXPECT_EQ(chart_buckets(kNsPerMs, kNsPerMs), 1u);       // exactly one quantum
  EXPECT_EQ(chart_buckets(kNsPerMs + 1, kNsPerMs), 1u);   // floor division
  EXPECT_EQ(chart_buckets(10 * kNsPerMs, kNsPerMs), 10u);
  EXPECT_EQ(chart_buckets(kTimeInfinity, 1), static_cast<std::size_t>(kTimeInfinity));
}

TEST(Fingerprint, ExcludesJobsAndIncludesEverythingElse) {
  Plan a;
  Plan b;
  b.options.jobs = 7;  // worker count never changes the produced bytes
  EXPECT_EQ(fingerprint(a), fingerprint(b));

  Plan nonest = a;
  nonest.options.resolve_nesting = false;
  EXPECT_NE(fingerprint(a), fingerprint(nonest));

  Plan windowed = a;
  windowed.t0 = 1;
  windowed.t1 = 2;
  EXPECT_NE(fingerprint(a), fingerprint(windowed));

  Plan cpu0 = a;
  cpu0.cpu = 0;
  EXPECT_NE(fingerprint(a), fingerprint(cpu0));
}

TEST(Fingerprint, AggregateIrrelevantFieldsAreExcluded) {
  // A summary plan fingerprints the same whatever its chart/topk knobs say —
  // those fields cannot affect the summary document.
  Plan a;
  Plan b;
  b.task = 42;
  b.quantum = 123;
  b.k = 9;
  b.activity = noise::ActivityKind::kTimerIrq;
  EXPECT_EQ(fingerprint(a), fingerprint(b));

  Plan chart1;
  chart1.aggregate = Aggregate::kChart;
  Plan chart2 = chart1;
  chart2.quantum = 500 * kNsPerUs;
  EXPECT_NE(fingerprint(chart1), fingerprint(chart2));
  Plan chart3 = chart1;
  chart3.task = 1;
  EXPECT_NE(fingerprint(chart1), fingerprint(chart3));

  Plan topk5;
  topk5.aggregate = Aggregate::kTopK;
  Plan topk9 = topk5;
  topk9.k = 9;
  EXPECT_NE(fingerprint(topk5), fingerprint(topk9));

  Plan ts_all;
  ts_all.aggregate = Aggregate::kTimeseries;
  Plan ts_irq = ts_all;
  ts_irq.activity = noise::ActivityKind::kTimerIrq;
  EXPECT_NE(fingerprint(ts_all), fingerprint(ts_irq));
}

TEST(Fingerprint, DistinctAggregatesNeverCollide) {
  Plan plan;
  std::string seen[4];
  int i = 0;
  for (const Aggregate a : {Aggregate::kSummary, Aggregate::kChart,
                            Aggregate::kTimeseries, Aggregate::kTopK}) {
    plan.aggregate = a;
    seen[i++] = fingerprint(plan);
  }
  for (int x = 0; x < 4; ++x)
    for (int y = x + 1; y < 4; ++y) EXPECT_NE(seen[x], seen[y]);
}

TEST(ActivityFromName, RoundTripsEveryKind) {
  for (int k = 0; k < static_cast<int>(noise::ActivityKind::kMaxKind); ++k) {
    const auto kind = static_cast<noise::ActivityKind>(k);
    const auto back = noise::activity_from_name(noise::activity_name(kind));
    ASSERT_TRUE(back.has_value()) << k;
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(noise::activity_from_name("no such activity").has_value());
  EXPECT_FALSE(noise::activity_from_name("").has_value());
}

}  // namespace
}  // namespace osn::query
