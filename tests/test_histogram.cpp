#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/distributions.hpp"
#include "stats/histogram.hpp"

namespace osn::stats {
namespace {

TEST(Histogram, BinsPartitionRange) {
  Histogram h(0, 10, 10);
  EXPECT_EQ(h.bin_count(), 10u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(9), 9.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Histogram, SamplesLandInCorrectBin) {
  Histogram h(0, 10, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(5.0);  // bin boundary: lands in [5,6)
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.bin(5), 1u);
}

TEST(Histogram, OutOfRangeCounted) {
  Histogram h(0, 10, 5);
  h.add(-1);
  h.add(10.0);  // hi is exclusive
  h.add(1e9);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0, 10, 10);
  h.add(2.5, 7);
  EXPECT_EQ(h.bin(2), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.quantile(0.01), 1.0, 1.5);
}

TEST(Histogram, QuantileEmptyReturnsLo) {
  Histogram h(5, 10, 5);
  EXPECT_EQ(h.quantile(0.5), 5.0);
}

TEST(Histogram, ModeBin) {
  Histogram h(0, 10, 10);
  h.add(3.5, 10);
  h.add(7.5, 3);
  EXPECT_EQ(h.mode_bin(), 3u);
}

TEST(Histogram, PeaksDetectBimodal) {
  // Two clear humps like AMG's page-fault distribution (Fig 4a).
  Histogram h(0, 10'000, 50);
  Xoshiro256 rng(5);
  for (int i = 0; i < 20'000; ++i) h.add(sample_lognormal(rng, 2'500, 0.1));
  for (int i = 0; i < 20'000; ++i) h.add(sample_lognormal(rng, 6'500, 0.1));
  const auto peaks = h.peaks(0.2);
  EXPECT_EQ(peaks.size(), 2u);
  EXPECT_NEAR(h.bin_lo(peaks[0]), 2'500, 600);
  EXPECT_NEAR(h.bin_lo(peaks[1]), 6'500, 800);
}

TEST(Histogram, PeaksDetectUnimodal) {
  Histogram h(0, 10'000, 50);
  Xoshiro256 rng(6);
  for (int i = 0; i < 40'000; ++i) h.add(sample_lognormal(rng, 2'500, 0.3));
  EXPECT_EQ(h.peaks(0.2).size(), 1u);
}

TEST(Histogram, InvalidConstructionDies) {
  EXPECT_DEATH(Histogram(10, 5, 10), "range/bins");
  EXPECT_DEATH(Histogram(0, 10, 0), "range/bins");
}

TEST(LogHistogram, BucketsByPowerOfTwo) {
  LogHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.bucket(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket(1), 2u);  // 2 and 3
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(LogHistogram, QuantileInterpolatesInsideBucketZero) {
  // Bucket 0 holds durations {0, 1} and spans [0, 2). The interpolation
  // used to be lo + frac * lo with lo == 0 — every quantile of bucket-0
  // data collapsed to 0 regardless of frac.
  LogHistogram h;
  h.add(0);
  h.add(1);
  EXPECT_EQ(h.quantile(0.5), 1u);   // halfway through [0, 2)
  EXPECT_LT(h.quantile(1.0), 2u + 1u);
  EXPECT_GT(h.quantile(1.0), 0u);
  // With mixed buckets, a mid quantile landing in bucket 0 still moves.
  LogHistogram m;
  m.add(1);
  m.add(1);
  m.add(1024);
  EXPECT_GT(m.quantile(0.5), 0u);
  EXPECT_LT(m.quantile(0.5), 2u);
}

TEST(LogHistogram, QuantileEdgesStayInDataRange) {
  // Empty histogram: 0, not bucket_lo(63) ~ 9.2e18 ns.
  LogHistogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0u);
  EXPECT_EQ(empty.quantile(1.0), 0u);
  // q = 1 (and even q > 1 from caller rounding) clamps to the top of the
  // highest occupied bucket instead of falling through to bucket 63.
  LogHistogram h;
  h.add(100);  // bucket 6: [64, 128)
  EXPECT_EQ(h.quantile(1.0), 128u);
  EXPECT_EQ(h.quantile(1.5), 128u);
  EXPECT_LT(h.quantile(0.999), 129u);
}

TEST(LogHistogram, QuantileMonotonic) {
  LogHistogram h;
  Xoshiro256 rng(8);
  for (int i = 0; i < 10'000; ++i)
    h.add(static_cast<DurNs>(sample_lognormal(rng, 4'000, 1.0)));
  EXPECT_LE(h.quantile(0.25), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.999));
}

TEST(RenderHistogram, ContainsTitleAndBars) {
  Histogram h(0, 10, 5);
  h.add(1, 100);
  h.add(6, 50);
  const std::string out = render_histogram(h, "page fault durations", "us");
  EXPECT_NE(out.find("page fault durations"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
}

TEST(RenderHistogram, MentionsCutTail) {
  Histogram h(0, 10, 5);
  h.add(5);
  h.add(1e9);  // overflow
  const std::string out = render_histogram(h, "t", "ns");
  EXPECT_NE(out.find("beyond range"), std::string::npos);
}

TEST(RenderHistogram, MentionsUnderflowSymmetrically) {
  // Underflow samples used to vanish from the rendering entirely; they are
  // now reported like the overflow tail.
  Histogram h(100, 200, 5);
  h.add(150);
  h.add(1);   // underflow
  h.add(2);   // underflow
  h.add(1e9);  // overflow
  const std::string out = render_histogram(h, "t", "ns");
  EXPECT_NE(out.find("+2 samples below range"), std::string::npos);
  EXPECT_NE(out.find("+1 samples beyond range"), std::string::npos);
}

}  // namespace
}  // namespace osn::stats
