#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "export/paraver.hpp"
#include "trace_builder.hpp"

namespace osn::exporter {
namespace {

using osn::testing::TraceBuilder;
using trace::EventType;

noise::NoiseAnalysis make_analysis() {
  static TraceBuilder b = [] {
    TraceBuilder builder(2);
    builder.task(1, "rank0", true).task(2, "rank1", true).task(9, "rpciod", false, true);
    builder.pair(0, 100, 2'278, 1, EventType::kIrqEntry, 0);
    builder.pair(0, 5'000, 7'913, 1, EventType::kPageFaultEntry, 0);
    builder.pair(1, 300, 800, 2, EventType::kSoftirqEntry, 1);
    builder.ev(1, 10'000, 2, EventType::kAppMark,
               static_cast<std::uint64_t>(trace::AppMark::kBarrierEnter));
    builder.ev(1, 12'000, 2, EventType::kAppMark,
               static_cast<std::uint64_t>(trace::AppMark::kBarrierExit));
    return builder;
  }();
  static auto model = b.build(20'000);
  return noise::NoiseAnalysis(model);
}

TEST(Paraver, HeaderDeclaresGeometry) {
  const auto files = export_paraver(make_analysis());
  // 20000 ns, 1 node with 2 cpus, 1 application with 2 tasks.
  EXPECT_EQ(files.prv.substr(0, 8), "#Paraver");
  EXPECT_NE(files.prv.find(":20000_ns:1(2):1:2("), std::string::npos);
}

TEST(Paraver, HeaderDateComesFromTraceMetaNotWallClock) {
  // start_ns = 0 (every simulated trace) stamps the fixed epoch — exports
  // are byte-reproducible across machines and days.
  const auto files = export_paraver(make_analysis());
  EXPECT_EQ(files.prv.substr(0, 31), "#Paraver (01/01/00 at 00:00):20");

  // A nonzero trace start derives a later deterministic date: 400 days +
  // 1 h + 2 min past the epoch lands in year 1 (day 400 - 366 = 34 ->
  // 04/02/01), never today's date.
  TraceBuilder b(1);
  b.task(1, "rank0", true);
  const TimeNs start = (400 * 24 * 60 + 62) * 60 * kNsPerSec;
  b.ev(0, start + 100, 1, EventType::kIrqEntry, 0);
  b.ev(0, start + 200, 1, EventType::kIrqExit, 0);
  auto model = b.build(start + 1'000);
  trace::TraceMeta meta = model.meta();
  meta.start_ns = start;
  auto shifted = trace::TraceModel(meta, {model.cpu_events(0)}, model.tasks());
  noise::NoiseAnalysis analysis(shifted);
  const auto late = export_paraver(analysis);
  EXPECT_EQ(late.prv.substr(0, 29), "#Paraver (04/02/01 at 01:02):");
}

TEST(Paraver, StateRecordsForNoiseIntervals) {
  const auto files = export_paraver(make_analysis());
  // Timer irq on cpu 1 (1-based), task 1: state 20 + kTimerIrq(0).
  EXPECT_NE(files.prv.find("1:1:1:1:1:100:2278:20"), std::string::npos);
  // Page fault: state 20 + kPageFault.
  const int pf_state = kStateKernelBase +
                       static_cast<int>(noise::ActivityKind::kPageFault);
  EXPECT_NE(files.prv.find("1:1:1:1:1:5000:7913:" + std::to_string(pf_state)),
            std::string::npos);
}

TEST(Paraver, EventRecordsBracketIntervals) {
  const auto files = export_paraver(make_analysis());
  const std::string type = std::to_string(kEventKernelActivity);
  // entry event with value kind+1, end event with value 0.
  EXPECT_NE(files.prv.find("2:1:1:1:1:100:" + type + ":1"), std::string::npos);
  EXPECT_NE(files.prv.find("2:1:1:1:1:2278:" + type + ":0"), std::string::npos);
}

TEST(Paraver, CommunicationWindowBecomesBlockedState) {
  const auto files = export_paraver(make_analysis());
  EXPECT_NE(files.prv.find(":10000:12000:" + std::to_string(kStateBlocked)),
            std::string::npos);
}

TEST(Paraver, RecordsAreTimeSorted) {
  const auto files = export_paraver(make_analysis());
  std::istringstream in(files.prv);
  std::string line;
  std::getline(in, line);  // header
  long long prev = -1;
  while (std::getline(in, line)) {
    // field 6 is the (start) time for both record types.
    std::istringstream ls(line);
    std::string field;
    for (int i = 0; i < 6; ++i) std::getline(ls, field, ':');
    const long long t = std::stoll(field);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Paraver, PcfNamesActivitiesAndStates) {
  const auto files = export_paraver(make_analysis());
  EXPECT_NE(files.pcf.find("run_timer_softirq"), std::string::npos);
  EXPECT_NE(files.pcf.find("net_rx_action"), std::string::npos);
  EXPECT_NE(files.pcf.find("Preempted"), std::string::npos);
  EXPECT_NE(files.pcf.find("STATES"), std::string::npos);
  EXPECT_NE(files.pcf.find("EVENT_TYPE"), std::string::npos);
}

TEST(Paraver, RowFileListsCpusAndTasks) {
  const auto files = export_paraver(make_analysis());
  EXPECT_NE(files.row.find("LEVEL CPU SIZE 2"), std::string::npos);
  EXPECT_NE(files.row.find("rank0"), std::string::npos);
  EXPECT_NE(files.row.find("rank1"), std::string::npos);
}

TEST(Paraver, WritesThreeFiles) {
  const std::string base = ::testing::TempDir() + "/osn_paraver_test";
  ASSERT_TRUE(write_paraver(make_analysis(), base));
  for (const char* ext : {".prv", ".pcf", ".row"}) {
    std::FILE* f = std::fopen((base + ext).c_str(), "rb");
    ASSERT_NE(f, nullptr) << ext;
    std::fclose(f);
    std::remove((base + ext).c_str());
  }
}

}  // namespace
}  // namespace osn::exporter
