// End-to-end equivalence of the live consumer-daemon pipeline against the
// offline drain: same seed, same workload — the streamed OSNT file must
// reconstruct the identical TraceModel (so every downstream analysis,
// breakdown included, is byte-for-byte the same), with zero records lost,
// and the incremental StreamingStats must agree with the offline
// NoiseAnalysis activity tables.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "noise/analysis.hpp"
#include "noise/streaming.hpp"
#include "trace/trace_io.hpp"
#include "workloads/ftq.hpp"
#include "workloads/live_source.hpp"
#include "workloads/workload.hpp"

namespace osn::workloads {
namespace {

FtqWorkload small_ftq() {
  FtqParams p;
  p.n_quanta = 400;
  return FtqWorkload(p);
}

TEST(LivePipeline, StreamedTraceReconstructsOfflineModelExactly) {
  constexpr std::uint64_t kSeed = 42;

  FtqWorkload offline_wl = small_ftq();
  const RunResult offline = run_workload(offline_wl, kSeed);

  const std::string path = ::testing::TempDir() + "/osn_live_eq.osnt";
  trace::OsntStreamWriter writer(path, /*chunk_records=*/512);
  ASSERT_TRUE(writer.ok());
  noise::StreamingStats streaming;

  FtqWorkload live_wl = small_ftq();
  LiveOptions opts;
  opts.per_cpu_capacity = 1u << 10;  // small enough to force real batching
  opts.batch_size = 64;
  opts.on_record = [&](const tracebuf::EventRecord& rec) {
    writer.append(rec);
    streaming.consume(rec);
  };
  const LiveRunResult live = run_workload_live(live_wl, kSeed, opts);
  ASSERT_TRUE(writer.finish(live.meta, live.tasks));

  // Zero-loss is part of the contract, not luck: backpressure blocks.
  EXPECT_EQ(live.drain.lost, 0u);
  EXPECT_EQ(live.drain.overwritten, 0u);
  EXPECT_EQ(live.drain.records, offline.trace.total_events());
  EXPECT_EQ(live.engine_events, offline.engine_events);

  const trace::TraceModel restored = trace::read_trace_file(path);
  std::remove(path.c_str());

  // Identical per-CPU event streams and task registry — everything the
  // analyses consume. Only meta.drain may differ (offline keeps zeros).
  ASSERT_EQ(restored.cpu_count(), offline.trace.cpu_count());
  for (CpuId c = 0; c < restored.cpu_count(); ++c)
    EXPECT_EQ(restored.cpu_events(c), offline.trace.cpu_events(c)) << "cpu " << c;
  EXPECT_EQ(restored.tasks(), offline.trace.tasks());
  trace::TraceMeta meta_no_drain = restored.meta();
  meta_no_drain.drain = trace::DrainStats{};
  EXPECT_EQ(meta_no_drain, offline.trace.meta());
  EXPECT_GT(restored.meta().drain.records, 0u);
  EXPECT_EQ(restored.validate(), "");

  // The incremental accumulator reproduces the offline activity tables.
  EXPECT_EQ(streaming.consumed(), offline.trace.total_events());
  EXPECT_EQ(streaming.open_frames(), 0u);
  const noise::NoiseAnalysis analysis(offline.trace);
  for (int k = 0; k < static_cast<int>(noise::ActivityKind::kMaxKind); ++k) {
    const auto kind = static_cast<noise::ActivityKind>(k);
    // Preemption is derived from sched_switch + the task registry, which is
    // only known offline; StreamingStats covers the entry/exit activities.
    if (kind == noise::ActivityKind::kPreemption) continue;
    const noise::EventStats off = analysis.activity_stats(kind);
    const noise::EventStats str = streaming.activity_stats(
        kind, offline.trace.duration(), offline.trace.cpu_count());
    EXPECT_EQ(str.count, off.count);
    EXPECT_EQ(str.max_ns, off.max_ns);
    EXPECT_EQ(str.min_ns, off.min_ns);
    EXPECT_DOUBLE_EQ(str.avg_ns, off.avg_ns);
    EXPECT_DOUBLE_EQ(str.freq_ev_per_sec, off.freq_ev_per_sec);
  }
}

TEST(LivePipeline, TinyBuffersStillLoseNothing) {
  // 256-slot channels on a multi-thousand-event run: the producer must
  // stall on the watermark rather than drop, and the stream stays complete.
  constexpr std::uint64_t kSeed = 7;
  FtqWorkload offline_wl = small_ftq();
  const RunResult offline = run_workload(offline_wl, kSeed);

  std::uint64_t streamed = 0;
  FtqWorkload live_wl = small_ftq();
  LiveOptions opts;
  opts.per_cpu_capacity = 1u << 8;
  opts.batch_size = 32;
  opts.on_record = [&](const tracebuf::EventRecord&) { ++streamed; };
  const LiveRunResult live = run_workload_live(live_wl, kSeed, opts);

  EXPECT_EQ(live.drain.lost, 0u);
  EXPECT_EQ(streamed, offline.trace.total_events());
}

// LiveRunSource is the third EventSource: the records come from a live
// consumer-daemon run, and the materialized model equals the offline trace
// (drain counters aside) — so any EventSource consumer can ingest a live
// run without special-casing it.
TEST(LivePipeline, LiveRunSourceMatchesOfflineTrace) {
  constexpr std::uint64_t kSeed = 42;
  FtqWorkload offline_wl = small_ftq();
  const RunResult offline = run_workload(offline_wl, kSeed);

  FtqWorkload live_wl = small_ftq();
  LiveOptions opts;
  opts.per_cpu_capacity = 1u << 10;
  opts.batch_size = 64;
  LiveRunSource source(live_wl, kSeed, opts);

  const trace::TraceModel model = source.to_model();
  ASSERT_EQ(model.cpu_count(), offline.trace.cpu_count());
  for (CpuId c = 0; c < model.cpu_count(); ++c)
    EXPECT_EQ(model.cpu_events(c), offline.trace.cpu_events(c)) << "cpu " << c;
  EXPECT_EQ(model.tasks(), offline.trace.tasks());
  EXPECT_GT(source.drain().records, 0u);
  EXPECT_EQ(source.drain().lost, 0u);

  // An analysis fed from the live source equals the offline one.
  const noise::NoiseAnalysis offline_analysis(offline.trace);
  noise::NoiseAnalysis live_analysis(source);
  for (int k = 0; k < static_cast<int>(noise::ActivityKind::kMaxKind); ++k) {
    const auto kind = static_cast<noise::ActivityKind>(k);
    const noise::EventStats a = offline_analysis.activity_stats(kind);
    const noise::EventStats b = live_analysis.activity_stats(kind);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.max_ns, b.max_ns);
    EXPECT_EQ(a.min_ns, b.min_ns);
  }
}

}  // namespace
}  // namespace osn::workloads
