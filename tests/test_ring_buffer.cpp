// The per-CPU lock-free ring buffer: correctness under sequential use,
// wraparound, both full-buffer policies, and a real two-thread stress run —
// the SPSC pattern LTTng's low overhead depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tracebuf/ring_buffer.hpp"

namespace osn::tracebuf {
namespace {

EventRecord rec(TimeNs ts, std::uint64_t arg = 0) {
  EventRecord r;
  r.timestamp = ts;
  r.arg = arg;
  return r;
}

TEST(RingBuffer, StartsEmpty) {
  RingBuffer rb(8);
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_FALSE(rb.try_pop().has_value());
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer rb(8);
  for (TimeNs i = 0; i < 5; ++i) ASSERT_TRUE(rb.try_push(rec(i)));
  for (TimeNs i = 0; i < 5; ++i) {
    auto r = rb.try_pop();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->timestamp, i);
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsAroundManyTimes) {
  RingBuffer rb(4);
  TimeNs next_out = 0;
  for (TimeNs i = 0; i < 1000; ++i) {
    ASSERT_TRUE(rb.try_push(rec(i)));
    if (i % 2 == 1) {
      // Drain two to exercise wraparound at various offsets.
      for (int k = 0; k < 2; ++k) {
        auto r = rb.try_pop();
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->timestamp, next_out++);
      }
    }
  }
}

TEST(RingBuffer, DiscardPolicyDropsNewAndCounts) {
  RingBuffer rb(4, FullPolicy::kDiscard);
  for (TimeNs i = 0; i < 4; ++i) ASSERT_TRUE(rb.try_push(rec(i)));
  EXPECT_FALSE(rb.try_push(rec(99)));
  EXPECT_FALSE(rb.try_push(rec(100)));
  EXPECT_EQ(rb.lost(), 2u);
  // Oldest records survive.
  EXPECT_EQ(rb.try_pop()->timestamp, 0u);
}

TEST(RingBuffer, OverwritePolicyKeepsNewest) {
  RingBuffer rb(4, FullPolicy::kOverwrite);
  for (TimeNs i = 0; i < 10; ++i) ASSERT_TRUE(rb.try_push(rec(i)));
  EXPECT_EQ(rb.overwritten(), 6u);
  EXPECT_EQ(rb.lost(), 0u);
  // Flight-recorder semantics: the last `capacity` records remain.
  for (TimeNs i = 6; i < 10; ++i) EXPECT_EQ(rb.try_pop()->timestamp, i);
}

TEST(RingBuffer, SizeTracksPushesAndPops) {
  RingBuffer rb(8);
  rb.try_push(rec(1));
  rb.try_push(rec(2));
  EXPECT_EQ(rb.size(), 2u);
  rb.try_pop();
  EXPECT_EQ(rb.size(), 1u);
}

TEST(RingBuffer, DrainCollectsEverything) {
  RingBuffer rb(16);
  for (TimeNs i = 0; i < 10; ++i) rb.try_push(rec(i));
  std::vector<EventRecord> out;
  EXPECT_EQ(rb.drain(out), 10u);
  EXPECT_EQ(out.size(), 10u);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, NonPowerOfTwoCapacityDies) {
  EXPECT_DEATH(RingBuffer(3), "power of two");
  EXPECT_DEATH(RingBuffer(0), "power of two");
  EXPECT_DEATH(RingBuffer(1), "power of two");
}

TEST(RingBuffer, RecordContentsPreserved) {
  RingBuffer rb(4);
  EventRecord in;
  in.timestamp = 123456789;
  in.pid = 42;
  in.cpu = 7;
  in.event = 3;
  in.arg = 0xdeadbeefULL;
  rb.try_push(in);
  EXPECT_EQ(*rb.try_pop(), in);
}

// The real thing: a producer thread and a consumer thread running
// concurrently; every record must arrive exactly once, in order.
TEST(RingBuffer, ConcurrentSpscStress) {
  RingBuffer rb(1u << 10);
  constexpr std::uint64_t kCount = 400'000;
  std::atomic<bool> start{false};

  std::thread producer([&] {
    while (!start.load()) {
    }
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!rb.try_push(rec(i, i * 3))) {
        // Buffer full: consumer will catch up.
      }
    }
  });

  std::uint64_t received = 0;
  bool ordered = true, intact = true;
  std::thread consumer([&] {
    while (!start.load()) {
    }
    while (received < kCount) {
      if (auto r = rb.try_pop()) {
        if (r->timestamp != received) ordered = false;
        if (r->arg != received * 3) intact = false;
        ++received;
      }
    }
  });

  start.store(true);
  producer.join();
  consumer.join();
  EXPECT_EQ(received, kCount);
  EXPECT_TRUE(ordered);
  EXPECT_TRUE(intact);
  // Note: lost() counts rejected push *attempts*; the producer's retry loop
  // makes that nonzero by design, but no accepted record may be dropped.
}

TEST(RingBuffer, PopBatchEmptyAndZeroSpan) {
  RingBuffer rb(8);
  std::vector<EventRecord> buf(4);
  EXPECT_EQ(rb.try_pop_batch(buf), 0u);
  rb.try_push(rec(1));
  EXPECT_EQ(rb.try_pop_batch(std::span<EventRecord>{}), 0u);
  EXPECT_EQ(rb.size(), 1u);
}

TEST(RingBuffer, PopBatchRespectsSpanSizeAndOrder) {
  RingBuffer rb(16);
  for (TimeNs i = 0; i < 10; ++i) rb.try_push(rec(i, i * 2));
  std::vector<EventRecord> buf(4);
  ASSERT_EQ(rb.try_pop_batch(buf), 4u);
  for (TimeNs i = 0; i < 4; ++i) {
    EXPECT_EQ(buf[i].timestamp, i);
    EXPECT_EQ(buf[i].arg, i * 2);
  }
  // A larger span than remaining records pops just the remainder.
  std::vector<EventRecord> big(32);
  ASSERT_EQ(rb.try_pop_batch(big), 6u);
  EXPECT_EQ(big[0].timestamp, 4u);
  EXPECT_EQ(big[5].timestamp, 9u);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, PopBatchWrapsAround) {
  RingBuffer rb(4);
  // Advance the indices so batches straddle the wrap point.
  for (TimeNs i = 0; i < 3; ++i) rb.try_push(rec(i));
  std::vector<EventRecord> buf(4);
  ASSERT_EQ(rb.try_pop_batch(buf), 3u);
  for (TimeNs i = 3; i < 7; ++i) ASSERT_TRUE(rb.try_push(rec(i)));
  ASSERT_EQ(rb.try_pop_batch(buf), 4u);
  for (TimeNs i = 0; i < 4; ++i) EXPECT_EQ(buf[i].timestamp, i + 3);
}

TEST(RingBuffer, SizeNeverExceedsCapacityUnderOverwrite) {
  RingBuffer rb(4, FullPolicy::kOverwrite);
  for (TimeNs i = 0; i < 100; ++i) {
    rb.try_push(rec(i));
    EXPECT_LE(rb.size(), rb.capacity());
  }
  EXPECT_EQ(rb.size(), 4u);
}

TEST(RingBuffer, OverwriteReclaimWithConsumerAttachedDies) {
  RingBuffer rb(4, FullPolicy::kOverwrite);
  rb.attach_consumer();
  // Non-full pushes remain fine with a consumer attached...
  for (TimeNs i = 0; i < 4; ++i) ASSERT_TRUE(rb.try_push(rec(i)));
  // ...but the reclaim path would race the consumer for tail_.
  EXPECT_DEATH(rb.try_push(rec(4)), "consumer attached");
}

TEST(RingBuffer, DoubleAttachDies) {
  RingBuffer rb(4);
  rb.attach_consumer();
  EXPECT_TRUE(rb.consumer_attached());
  EXPECT_DEATH(rb.attach_consumer(), "already has a consumer");
  rb.detach_consumer();
  EXPECT_FALSE(rb.consumer_attached());
  rb.attach_consumer();  // re-attach after detach is fine
}

TEST(RingBuffer, ConcurrentDiscardAccountsExactly) {
  // Slow consumer: pushes + losses must equal attempts.
  RingBuffer rb(1u << 4);
  constexpr std::uint64_t kAttempts = 100'000;
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<bool> done{false};

  std::thread producer([&] {
    std::uint64_t ok = 0;
    for (std::uint64_t i = 0; i < kAttempts; ++i)
      if (rb.try_push(rec(i))) ++ok;
    accepted.store(ok);
    done.store(true);
  });

  std::uint64_t consumed = 0;
  while (!done.load() || !rb.empty()) {
    if (rb.try_pop()) ++consumed;
  }
  producer.join();
  EXPECT_EQ(consumed, accepted.load());
  EXPECT_EQ(accepted.load() + rb.lost(), kAttempts);
}

}  // namespace
}  // namespace osn::tracebuf
