// The consumer daemon: inline drains, live concurrent drains against real
// producer threads, merged-order determinism against the offline k-way merge,
// and the observability counters. The concurrent tests are the designated
// TSan targets (see OSN_SANITIZE in the top-level CMakeLists): they exercise
// the RingBuffer release/acquire protocol and the Consumer's staging state
// under genuine parallelism.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "trace/sink.hpp"
#include "tracebuf/channel_set.hpp"
#include "tracebuf/consumer.hpp"

namespace osn::tracebuf {
namespace {

EventRecord rec(TimeNs ts, std::uint16_t cpu, std::uint64_t arg = 0) {
  EventRecord r;
  r.timestamp = ts;
  r.cpu = cpu;
  r.arg = arg;
  return r;
}

bool merged_order_le(const EventRecord& a, const EventRecord& b) {
  if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
  return a.cpu <= b.cpu;
}

TEST(Consumer, InlineDrainWithoutStart) {
  ChannelSet cs(2, 16);
  cs.emit(0, rec(10, 0));
  cs.emit(1, rec(5, 1));
  cs.emit(0, rec(20, 0));
  std::vector<EventRecord> got;
  Consumer consumer(cs, [&](const EventRecord& r) { got.push_back(r); });
  consumer.stop();  // no start(): stop() doubles as an inline drain
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].timestamp, 5u);
  EXPECT_EQ(got[1].timestamp, 10u);
  EXPECT_EQ(got[2].timestamp, 20u);
  EXPECT_EQ(consumer.stats().records, 3u);
  EXPECT_EQ(consumer.stats().lost, 0u);
}

TEST(Consumer, StopIsIdempotentAndDrainsResidue) {
  ChannelSet cs(1, 16);
  std::vector<EventRecord> got;
  Consumer consumer(cs, [&](const EventRecord& r) { got.push_back(r); });
  cs.emit(0, rec(1, 0));
  consumer.stop();
  EXPECT_EQ(got.size(), 1u);
  // Records emitted after a stop are picked up by the next stop — the
  // pattern the tracer-overhead bench uses for periodic inline drains.
  cs.emit(0, rec(2, 0));
  consumer.stop();
  EXPECT_EQ(got.size(), 2u);
  consumer.stop();
  EXPECT_EQ(got.size(), 2u);
}

TEST(Consumer, MatchesOfflineMergeExactly) {
  // Same interleaved input into two channel sets; the live consumer's merged
  // stream must equal drain_merged() record for record, ties included.
  const std::size_t k = 4;
  ChannelSet live(k, 1u << 8), offline(k, 1u << 8);
  std::uint64_t n = 0;
  for (TimeNs t = 0; t < 50; ++t) {
    for (std::uint16_t cpu = 0; cpu < k; ++cpu) {
      if ((t + cpu) % 3 == 0) continue;  // ragged streams
      // Duplicate timestamps across channels to stress the tie-break.
      const EventRecord r = rec(t / 2, cpu, n++);
      live.emit(cpu, r);
      offline.emit(cpu, r);
    }
  }
  std::vector<EventRecord> got;
  Consumer consumer(live, [&](const EventRecord& r) { got.push_back(r); });
  consumer.stop();
  const std::vector<EventRecord> want = offline.drain_merged();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], want[i]);
}

TEST(Consumer, SecondConsumerOnSameChannelsDies) {
  ChannelSet cs(2, 16);
  Consumer first(cs, [](const EventRecord&) {});
  EXPECT_DEATH(Consumer(cs, [](const EventRecord&) {}),
               "already has a consumer");
}

TEST(Consumer, BatchStatsRespectBatchSize) {
  ChannelSet cs(1, 1u << 8);
  for (TimeNs t = 0; t < 100; ++t) cs.emit(0, rec(t, 0));
  std::uint64_t seen = 0;
  Consumer consumer(cs, [&](const EventRecord&) { ++seen; },
                    Consumer::Options{16});
  consumer.stop();
  EXPECT_EQ(seen, 100u);
  const ConsumerStats& s = consumer.stats();
  EXPECT_EQ(s.records, 100u);
  EXPECT_EQ(s.channels[0].records, 100u);
  EXPECT_LE(s.max_batch, 16u);
  EXPECT_GE(s.batches, 100u / 16);
}

// TSan target: real producer threads (one per channel, the SPSC contract)
// racing the consumer daemon. With no loss, every record must be delivered
// exactly once, per-channel streams in order, globally merged.
TEST(Consumer, ConcurrentProducersNoRecordLostOrDuplicated) {
  const std::size_t k = 4;
  constexpr std::uint64_t kPerCpu = 100'000;
  // Large enough that nothing is discarded: zero-loss is a precondition of
  // the exactly-once claim (losses are *accounted*, not silent).
  ChannelSet cs(k, 1u << 18);

  std::vector<EventRecord> got;
  got.reserve(k * kPerCpu);
  Consumer consumer(cs, [&](const EventRecord& r) { got.push_back(r); });
  consumer.start();
  EXPECT_TRUE(consumer.running());

  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (std::uint16_t cpu = 0; cpu < k; ++cpu) {
    producers.emplace_back([&, cpu] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerCpu; ++i) {
        // Monotonic per-channel timestamps with heavy cross-channel ties.
        while (!cs.emit(cpu, rec(i / 7, cpu, i))) {
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : producers) t.join();
  consumer.stop();
  EXPECT_FALSE(consumer.running());

  ASSERT_EQ(consumer.stats().lost, 0u);
  ASSERT_EQ(got.size(), k * kPerCpu);
  // Global merged order, per-channel exactly-once in sequence.
  std::vector<std::uint64_t> next(k, 0);
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (i > 0) {
      ASSERT_TRUE(merged_order_le(got[i - 1], got[i]));
    }
    ASSERT_LT(got[i].cpu, k);
    ASSERT_EQ(got[i].arg, next[got[i].cpu]++);
  }
  for (std::uint16_t cpu = 0; cpu < k; ++cpu) EXPECT_EQ(next[cpu], kPerCpu);
}

// TSan target: the backpressure path. Tiny buffers + a blocking sink must
// deliver every record with zero loss, stalling producers instead.
TEST(Consumer, BackpressureBlocksInsteadOfDropping) {
  const std::size_t k = 2;
  constexpr std::uint64_t kPerCpu = 50'000;
  ChannelSet cs(k, 1u << 6);  // 64 slots: guaranteed watermark pressure
  std::vector<EventRecord> got;
  Consumer consumer(cs, [&](const EventRecord& r) { got.push_back(r); });
  consumer.start();

  std::vector<trace::BlockingChannelSink> sinks;
  sinks.reserve(k);
  for (std::size_t i = 0; i < k; ++i) sinks.emplace_back(cs);

  std::vector<std::thread> producers;
  for (std::uint16_t cpu = 0; cpu < k; ++cpu) {
    producers.emplace_back([&, cpu] {
      for (std::uint64_t i = 0; i < kPerCpu; ++i)
        sinks[cpu].write(rec(i, cpu, i));
    });
  }
  for (auto& t : producers) t.join();
  consumer.stop();

  EXPECT_EQ(consumer.stats().lost, 0u);
  ASSERT_EQ(got.size(), k * kPerCpu);
  std::vector<std::uint64_t> next(k, 0);
  for (const EventRecord& r : got) ASSERT_EQ(r.arg, next[r.cpu]++);
}

}  // namespace
}  // namespace osn::tracebuf
