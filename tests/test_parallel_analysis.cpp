// Determinism contract of the sharded analysis pipeline: for any trace,
// --jobs 1 (serial reference path) and --jobs N produce byte-identical
// results — interval lists, noise lists, OSNT stats tables, Paraver
// .prv/.pcf/.row bytes, and the Synthetic Noise Chart rendering.
//
// Traces are randomized: nested kernel activity across 8 CPUs, preemptions
// via sched_switch, barrier (communication) windows, daemon/idle contexts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "export/ascii.hpp"
#include "export/csv.hpp"
#include "export/paraver.hpp"
#include "noise/analysis.hpp"
#include "noise/chart.hpp"
#include "trace_builder.hpp"

namespace osn::noise {
namespace {

using osn::testing::TraceBuilder;
using trace::EventType;

constexpr std::uint16_t kCpus = 8;

/// One random nested kernel-activity tree on `cpu`, rooted at time `t`;
/// returns the timestamp just past its exit.
TimeNs emit_activity(TraceBuilder& b, Xoshiro256& rng, CpuId cpu, Pid pid, TimeNs t,
                     int depth) {
  struct Entry {
    EventType type;
    std::uint64_t arg;
  };
  static const std::vector<Entry> kEntries = {
      {EventType::kIrqEntry, static_cast<std::uint64_t>(trace::IrqVector::kTimer)},
      {EventType::kIrqEntry, static_cast<std::uint64_t>(trace::IrqVector::kNet)},
      {EventType::kIrqEntry, static_cast<std::uint64_t>(trace::IrqVector::kResched)},
      {EventType::kSoftirqEntry, static_cast<std::uint64_t>(trace::SoftirqNr::kTimer)},
      {EventType::kSoftirqEntry, static_cast<std::uint64_t>(trace::SoftirqNr::kSched)},
      {EventType::kSoftirqEntry, static_cast<std::uint64_t>(trace::SoftirqNr::kRcu)},
      {EventType::kSoftirqEntry, static_cast<std::uint64_t>(trace::SoftirqNr::kNetRx)},
      {EventType::kTaskletEntry, static_cast<std::uint64_t>(trace::TaskletId::kNetTx)},
      {EventType::kPageFaultEntry, static_cast<std::uint64_t>(trace::PageFaultKind::kCow)},
      {EventType::kSyscallEntry, static_cast<std::uint64_t>(trace::SyscallNr::kRead)},
      {EventType::kScheduleEntry, 0},
  };
  const Entry& e = kEntries[rng.bounded(kEntries.size())];
  b.ev(cpu, t, pid, e.type, e.arg);
  TimeNs cursor = t + 50 + rng.bounded(2'000);
  if (depth < 3 && rng.bounded(100) < 35)  // nested interruption
    cursor = emit_activity(b, rng, cpu, pid, cursor, depth + 1);
  const TimeNs end = cursor + 50 + rng.bounded(1'000);
  b.ev(cpu, end, pid, trace::exit_of(e.type), e.arg);
  return end + 1 + rng.bounded(500);
}

/// A randomized but well-formed multi-CPU trace: monotonic per-CPU streams,
/// balanced nesting, one app rank and one daemon per CPU, preemptions and
/// barrier windows sprinkled in.
trace::TraceModel random_trace(std::uint64_t seed) {
  TraceBuilder b(kCpus);
  for (CpuId cpu = 0; cpu < kCpus; ++cpu) {
    b.task(cpu + 1, "rank" + std::to_string(cpu), true);
    b.task(100 + cpu, "daemon" + std::to_string(cpu), false, true);
  }
  Xoshiro256 root(seed);
  TimeNs trace_end = 0;
  for (CpuId cpu = 0; cpu < kCpus; ++cpu) {
    Xoshiro256 rng = root.split();
    const Pid app = cpu + 1u;
    const Pid daemon = 100u + cpu;
    TimeNs t = 100 + rng.bounded(1'000);
    bool in_barrier = false;
    for (int burst = 0; burst < 120; ++burst) {
      const std::uint64_t pick = rng.bounded(100);
      if (pick < 60) {
        // Kernel activity in app, daemon or idle context.
        const std::uint64_t ctx = rng.bounded(10);
        const Pid pid = ctx < 7 ? app : (ctx < 9 ? daemon : kIdlePid);
        t = emit_activity(b, rng, cpu, pid, t, 0);
      } else if (pick < 75) {
        // Preemption: the app rank descheduled while runnable, resumed later.
        b.ev(cpu, t, app, EventType::kSchedSwitch,
             trace::pack_switch({app, daemon, true}));
        t += 500 + rng.bounded(5'000);
        b.ev(cpu, t, daemon, EventType::kSchedSwitch,
             trace::pack_switch({daemon, app, false}));
        t += 1 + rng.bounded(500);
      } else if (pick < 90) {
        // Barrier window toggling (enter..exit on the same rank).
        b.ev(cpu, t, app, EventType::kAppMark,
             static_cast<std::uint64_t>(in_barrier ? trace::AppMark::kBarrierExit
                                                   : trace::AppMark::kBarrierEnter));
        in_barrier = !in_barrier;
        t += 200 + rng.bounded(2'000);
      } else {
        // Point events the interval scan must skip over.
        b.ev(cpu, t, app, EventType::kSchedWakeup, daemon);
        t += 1 + rng.bounded(300);
      }
    }
    trace_end = std::max(trace_end, t);
  }
  return b.build(trace_end + 1'000);
}

AnalysisOptions with_jobs(std::size_t jobs) {
  AnalysisOptions opts;
  opts.jobs = jobs;
  return opts;
}

/// The exact table `osn-analyze stats` prints.
std::string stats_table(const NoiseAnalysis& analysis) {
  TextTable table({"activity", "freq(ev/sec)", "avg(nsec)", "max(nsec)", "min(nsec)"});
  for (int k = 0; k < static_cast<int>(ActivityKind::kMaxKind); ++k) {
    const auto kind = static_cast<ActivityKind>(k);
    const EventStats s = analysis.activity_stats(kind);
    if (s.count == 0) continue;
    table.add_row({std::string(activity_name(kind)), fmt_fixed(s.freq_ev_per_sec, 1),
                   with_commas(static_cast<std::uint64_t>(s.avg_ns)),
                   with_commas(s.max_ns), with_commas(s.min_ns)});
  }
  return table.render();
}

TEST(ParallelAnalysis, SerialAndShardedAreByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const trace::TraceModel model = random_trace(seed);
    ASSERT_EQ(model.validate(), "") << "seed " << seed;

    const NoiseAnalysis serial(model, with_jobs(1));
    const NoiseAnalysis sharded(model, with_jobs(8));

    // Interval and noise lists: element-for-element identical.
    EXPECT_EQ(serial.intervals().kernel, sharded.intervals().kernel) << "seed " << seed;
    EXPECT_EQ(serial.intervals().preemption, sharded.intervals().preemption)
        << "seed " << seed;
    EXPECT_EQ(serial.noise_intervals(), sharded.noise_intervals()) << "seed " << seed;
    ASSERT_FALSE(serial.noise_intervals().empty()) << "seed " << seed;

    // OSNT stats table bytes.
    EXPECT_EQ(stats_table(serial), stats_table(sharded)) << "seed " << seed;

    // Paraver export bytes (.prv / .pcf / .row).
    const exporter::ParaverFiles pa = exporter::export_paraver(serial);
    const exporter::ParaverFiles pb = exporter::export_paraver(sharded);
    EXPECT_EQ(pa.prv, pb.prv) << "seed " << seed;
    EXPECT_EQ(pa.pcf, pb.pcf) << "seed " << seed;
    EXPECT_EQ(pa.row, pb.row) << "seed " << seed;

    // CSV rows and the Synthetic Noise Chart rendering.
    EXPECT_EQ(exporter::intervals_csv(serial), exporter::intervals_csv(sharded))
        << "seed " << seed;
    const SyntheticChart ca = build_chart(serial, 1, 0, 10 * kNsPerUs, 64);
    const SyntheticChart cb = build_chart(sharded, 1, 0, 10 * kNsPerUs, 64);
    EXPECT_EQ(exporter::render_spikes(ca), exporter::render_spikes(cb)) << "seed " << seed;
  }
}

TEST(ParallelAnalysis, JobsAutoAndOddCountsAgreeWithSerial) {
  const trace::TraceModel model = random_trace(42);
  const NoiseAnalysis serial(model, with_jobs(1));
  for (const std::size_t jobs : {std::size_t{0}, std::size_t{3}, std::size_t{16}}) {
    const NoiseAnalysis sharded(model, with_jobs(jobs));
    EXPECT_EQ(serial.noise_intervals(), sharded.noise_intervals()) << "jobs " << jobs;
    EXPECT_EQ(stats_table(serial), stats_table(sharded)) << "jobs " << jobs;
  }
}

TEST(ParallelAnalysis, AblationOptionsStayEquivalentToo) {
  const trace::TraceModel model = random_trace(7);
  for (const bool nesting : {true, false}) {
    for (const bool runnable : {true, false}) {
      AnalysisOptions serial_opts;
      serial_opts.resolve_nesting = nesting;
      serial_opts.runnable_filter = runnable;
      AnalysisOptions sharded_opts = serial_opts;
      serial_opts.jobs = 1;
      sharded_opts.jobs = 8;
      const NoiseAnalysis serial(model, serial_opts);
      const NoiseAnalysis sharded(model, sharded_opts);
      EXPECT_EQ(serial.noise_intervals(), sharded.noise_intervals())
          << "nesting " << nesting << " runnable " << runnable;
      EXPECT_EQ(stats_table(serial), stats_table(sharded))
          << "nesting " << nesting << " runnable " << runnable;
    }
  }
}

}  // namespace
}  // namespace osn::noise
