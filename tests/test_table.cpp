#include <gtest/gtest.h>

#include "common/table.hpp"

namespace osn {
namespace {

TEST(TextTable, RendersHeaderAndSeparator) {
  TextTable t({"name", "value"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, FirstColumnLeftRestRightAligned) {
  TextTable t({"k", "num"});
  t.add_row({"a", "1"});
  t.add_row({"long-key", "12345"});
  const std::string out = t.render();
  // "a" row: number right-aligned under the widest cell.
  EXPECT_NE(out.find("a             1"), std::string::npos);
  EXPECT_NE(out.find("long-key  12345"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchDies) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(TextTable, EmptyHeaderDies) {
  EXPECT_DEATH(TextTable({}), "at least one column");
}

TEST(TextTable, ManyRowsAllPresent) {
  TextTable t({"i"});
  for (int i = 0; i < 50; ++i) t.add_row({std::to_string(i)});
  const std::string out = t.render();
  EXPECT_NE(out.find("\n49"), std::string::npos);
}

}  // namespace
}  // namespace osn
