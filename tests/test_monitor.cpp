// Monitoring pipeline tests: rolling segment store invariants (rotation,
// sealing, retention, compaction), rolling-view query equivalence against
// the uncut trace, the baseline/regression detector, injection, and
// catalog rescan of a live store directory.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "monitor/baseline.hpp"
#include "monitor/monitor.hpp"
#include "monitor/rolling.hpp"
#include "monitor/segment_store.hpp"
#include "noise/index_aggregate.hpp"
#include "query/engine.hpp"
#include "serve/catalog.hpp"
#include "serve_helpers.hpp"
#include "trace/osnt_reader.hpp"
#include "trace/trace_io.hpp"
#include "trace_builder.hpp"

namespace osn::monitor {
namespace {

using serve::testing::make_model;
using serve::testing::TempDir;

/// Streams a model's merged record sequence into the store and seals it at
/// the model's end — exactly what a replay through the daemon does.
void feed(SegmentStore& store, const trace::TraceModel& model) {
  for (const auto& rec : model.merged()) store.append(rec);
  store.finish(model.meta().end_ns);
}

/// Randomized analyzable trace (same shape as the query-engine property
/// tests): well-formed nesting, app ranks, events over tens of ms.
trace::TraceModel random_trace(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const auto n_cpus = static_cast<std::uint16_t>(1 + rng.bounded(4));
  osn::testing::TraceBuilder b(n_cpus);
  b.task(1, "rank0", /*is_app=*/true);
  b.task(2, "rank1", /*is_app=*/true);
  b.task(9, "events/0", /*is_app=*/false, /*is_kthread=*/true);
  static constexpr trace::EventType kEntries[] = {
      trace::EventType::kIrqEntry, trace::EventType::kSoftirqEntry,
      trace::EventType::kPageFaultEntry, trace::EventType::kSyscallEntry};
  TimeNs end = 0;
  for (CpuId cpu = 0; cpu < n_cpus; ++cpu) {
    TimeNs t = 1 + rng.bounded(1000);
    const std::size_t n_pairs = 50 + rng.bounded(150);
    for (std::size_t i = 0; i < n_pairs; ++i) {
      const trace::EventType entry = kEntries[rng.bounded(std::size(kEntries))];
      static constexpr std::uint64_t kSoftirqNrs[] = {1, 2, 3, 9};
      const std::uint64_t arg = entry == trace::EventType::kSoftirqEntry
                                    ? kSoftirqNrs[rng.bounded(std::size(kSoftirqNrs))]
                                    : rng.bounded(3);
      const Pid pid = rng.bounded(2) == 0 ? 1 : 2;
      const DurNs width = 100 + rng.bounded(5'000);
      b.pair(cpu, t, t + width, pid, entry, arg);
      t += width + 1'000 + rng.bounded(500'000);
    }
    end = std::max(end, t);
  }
  return b.build(end + 1);
}

/// Writes the uncut reference file the store's contents are compared to.
std::string write_uncut(const trace::TraceModel& model, const TempDir& dir) {
  const std::string path = dir.path() + "/uncut.osnt";
  trace::OsntStreamWriter writer(path, /*chunk_records=*/64);
  writer.set_aggregator(std::make_unique<noise::IndexAggregator>());
  for (const auto& rec : model.merged()) writer.append(rec);
  EXPECT_TRUE(writer.finish(model.meta(), model.tasks()));
  return path;
}

StoreOptions small_segments(const std::string& dir, DurNs segment_ns) {
  StoreOptions opts;
  opts.dir = dir;
  opts.segment_ns = segment_ns;
  opts.segment_bytes = 0;  // time-driven rotation only: deterministic layout
  opts.chunk_records = 64;
  return opts;
}

// ---------------------------------------------------------------------------
// SegmentStore
// ---------------------------------------------------------------------------

TEST(SegmentStore, RotatesSealsAndSpansTheStream) {
  TempDir dir("monitor_store");
  const trace::TraceModel model = make_model(400);  // 4 ms span
  SegmentStore store(small_segments(dir.path() + "/store", 500 * kNsPerUs),
                     model.meta(), model.tasks());
  feed(store, model);
  ASSERT_TRUE(store.ok());

  const std::vector<SegmentInfo>& segs = store.segments();
  ASSERT_GE(segs.size(), 3u);
  EXPECT_EQ(store.stats().segments_sealed, segs.size());
  EXPECT_EQ(store.stats().rotations_forced, 0u);  // gaps everywhere: all clean

  // The union of spans is the uncut trace's span, with no holes.
  EXPECT_EQ(segs.front().start_ns, model.meta().start_ns);
  EXPECT_EQ(segs.back().end_ns, model.meta().end_ns);
  std::uint64_t records = 0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    records += segs[i].records;
    if (i > 0) {
      EXPECT_EQ(segs[i].start_ns, segs[i - 1].end_ns);
    }
    EXPECT_TRUE(segs[i].clean_cut);

    // Every sealed segment is a normal, finished v3 file with aggregates —
    // NOT the truncated salvage shape a crashed writer leaves.
    trace::OsntReader reader(segs[i].path);
    EXPECT_EQ(reader.version(), 3u);
    EXPECT_FALSE(reader.truncated());
    EXPECT_FALSE(reader.index_recovered());
    EXPECT_TRUE(reader.index_summary().has_value());
    EXPECT_EQ(reader.meta().start_ns, segs[i].start_ns);
    EXPECT_EQ(reader.meta().end_ns, segs[i].end_ns);
  }
  EXPECT_EQ(records, store.stats().records);

  // No in-progress `.part` files survive a clean finish.
  for (const auto& entry : std::filesystem::directory_iterator(store.dir()))
    EXPECT_NE(entry.path().extension(), ".part") << entry.path();
}

TEST(SegmentStore, FinishIsIdempotentAndDestructorSealsBestEffort) {
  TempDir dir("monitor_store_fin");
  const trace::TraceModel model = make_model(50);
  {
    SegmentStore store(small_segments(dir.path() + "/store", sec(1)), model.meta(),
                       model.tasks());
    for (const auto& rec : model.merged()) store.append(rec);
    // No explicit finish: the destructor seals at the last timestamp.
  }
  RollingView view(dir.path() + "/store");
  ASSERT_EQ(view.segment_count(), 1u);
  EXPECT_EQ(view.meta().start_ns, model.meta().start_ns);

  SegmentStore store(small_segments(dir.path() + "/store2", sec(1)), model.meta(),
                     model.tasks());
  feed(store, model);
  store.finish(model.meta().end_ns);  // second finish: no-op
  EXPECT_EQ(store.segments().size(), 1u);
}

// ---------------------------------------------------------------------------
// RollingView equivalence with the uncut trace
// ---------------------------------------------------------------------------

class RollingEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RollingEquivalence, PlansOverSegmentsMatchPlansOverUncutTrace) {
  TempDir dir("monitor_roll");
  const trace::TraceModel model = random_trace(GetParam());
  const std::string uncut = write_uncut(model, dir);
  const DurNs span = model.meta().end_ns - model.meta().start_ns;

  SegmentStore store(small_segments(dir.path() + "/store", span / 5), model.meta(),
                     model.tasks());
  feed(store, model);
  ASSERT_TRUE(store.ok());
  ASSERT_GE(store.segments().size(), 3u);

  RollingView view(dir.path() + "/store");
  trace::OsntReader reader(uncut);
  query::Engine engine;
  ThreadPool pool(3);
  Xoshiro256 rng(GetParam() ^ 0x9E3779B97F4A7C15ull);

  std::vector<query::Plan> plans;
  plans.emplace_back();  // full-span summary: the merged fast-path shape
  {
    query::Plan p;  // non-default options: ineligible for both fast paths
    p.options.resolve_nesting = false;
    plans.push_back(p);
  }
  {
    query::Plan p;  // random window: the record path
    const TimeNs a = rng.bounded(span);
    p.t0 = a;
    p.t1 = a + 1 + rng.bounded(span - a);
    plans.push_back(p);
  }
  {
    query::Plan p;
    p.aggregate = query::Aggregate::kTopK;
    p.k = 3;
    p.t0 = span / 4;
    p.t1 = span / 2 + 1;
    plans.push_back(p);
  }
  {
    query::Plan p;
    p.aggregate = query::Aggregate::kTimeseries;
    p.quantum = 100 * kNsPerUs;
    plans.push_back(p);
  }

  for (std::size_t i = 0; i < plans.size(); ++i) {
    const std::string expect = engine.run(reader, "", plans[i]);
    EXPECT_EQ(view.run(plans[i]), expect) << "plan " << i << " serial";
    EXPECT_EQ(view.run(plans[i], &pool), expect) << "plan " << i << " pooled";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollingEquivalence, ::testing::Values(1u, 2u, 3u, 4u));

TEST(RollingView, FullCoverWindowCanonicalizesLikeTheEngine) {
  TempDir dir("monitor_roll_canon");
  const trace::TraceModel model = make_model(200);
  const std::string uncut = write_uncut(model, dir);
  SegmentStore store(small_segments(dir.path() + "/store", 700 * kNsPerUs),
                     model.meta(), model.tasks());
  feed(store, model);

  RollingView view(dir.path() + "/store");
  trace::OsntReader reader(uncut);
  query::Engine engine;

  query::Plan covering;
  covering.t0 = 0;
  covering.t1 = model.meta().end_ns + kNsPerMs;
  EXPECT_EQ(view.run(covering), engine.run(reader, "", covering));
}

TEST(RollingView, EmptyStoreAndBadPlansAreRejected) {
  TempDir dir("monitor_roll_bad");
  std::filesystem::create_directories(dir.path() + "/empty");
  RollingView empty(dir.path() + "/empty");
  EXPECT_THROW(empty.run(query::Plan{}), query::PlanError);

  const trace::TraceModel model = make_model(50);
  SegmentStore store(small_segments(dir.path() + "/store", sec(1)), model.meta(),
                     model.tasks());
  feed(store, model);
  RollingView view(dir.path() + "/store");
  query::Plan inverted;
  inverted.t0 = 10;
  inverted.t1 = 10;
  EXPECT_THROW(view.run(inverted), query::PlanError);
}

// ---------------------------------------------------------------------------
// Retention + compaction
// ---------------------------------------------------------------------------

TEST(SegmentStore, CompactionPreservesTotalsAndRefusesCompactedWindows) {
  TempDir dir("monitor_compact");
  const trace::TraceModel model = random_trace(7);
  const std::string uncut = write_uncut(model, dir);
  const DurNs span = model.meta().end_ns - model.meta().start_ns;

  StoreOptions opts = small_segments(dir.path() + "/store", span / 6);
  opts.retain_ns = span / 2;
  SegmentStore store(opts, model.meta(), model.tasks());
  feed(store, model);
  ASSERT_TRUE(store.ok());
  ASSERT_GE(store.stats().compactions, 1u);
  EXPECT_EQ(store.stats().compaction_failures, 0u);

  RollingView view(dir.path() + "/store");
  ASSERT_GE(view.compacted_count(), 1u);

  // Compacted summary segments are zero-record v3 files with one aggregate.
  for (const SegmentInfo& seg : store.segments()) {
    if (!seg.compacted) continue;
    trace::OsntReader reader(seg.path);
    EXPECT_EQ(reader.indexed_records(), 0u);
    EXPECT_FALSE(reader.truncated());
    ASSERT_TRUE(reader.index_summary().has_value());
  }

  // Downsampling must not move the full-span summary by a byte: compaction
  // folds the exact integer accumulators, never re-derives them.
  trace::OsntReader reader(uncut);
  query::Engine engine;
  EXPECT_EQ(view.run(query::Plan{}), engine.run(reader, "", query::Plan{}));

  // A window inside the compacted history needs records that no longer
  // exist: refusing beats silently answering from partial data.
  query::Plan early;
  early.t0 = model.meta().start_ns;
  early.t1 = model.meta().start_ns + span / 8;
  try {
    view.run(early);
    FAIL() << "expected PlanError for a compacted window";
  } catch (const query::PlanError& e) {
    EXPECT_EQ(e.kind(), query::PlanError::Kind::kTraceMismatch);
  }

  // A window over the retained full-resolution tail still answers, and
  // byte-identically to the uncut trace.
  query::Plan late;
  late.t0 = model.meta().end_ns - span / 8;
  late.t1 = model.meta().end_ns;
  EXPECT_EQ(view.run(late), engine.run(reader, "", late));
}

TEST(SegmentStore, RetentionDeletesWhenCompactionDisabled) {
  TempDir dir("monitor_nocompact");
  const trace::TraceModel model = make_model(400);
  const DurNs span = model.meta().end_ns - model.meta().start_ns;
  StoreOptions opts = small_segments(dir.path() + "/store", span / 6);
  opts.retain_ns = span / 2;
  opts.compact = false;
  SegmentStore store(opts, model.meta(), model.tasks());
  feed(store, model);

  EXPECT_GE(store.stats().segments_deleted, 1u);
  EXPECT_EQ(store.stats().compactions, 0u);
  for (const SegmentInfo& seg : store.segments()) EXPECT_FALSE(seg.compacted);
}

// ---------------------------------------------------------------------------
// WindowTracker + RegressionDetector
// ---------------------------------------------------------------------------

WindowMetrics window_with(double fraction, DurNs p99, DurNs window_ns = kNsPerMs,
                          noise::NoiseCategory cat = noise::NoiseCategory::kPeriodic) {
  WindowMetrics m;
  m.end_ns = window_ns;
  m.noise_sum_ns = static_cast<DurNs>(fraction * static_cast<double>(window_ns));
  m.cat_sum_ns[static_cast<std::size_t>(cat)] = m.noise_sum_ns;
  m.intervals = m.noise_sum_ns == 0 ? 0 : 8;
  m.p99_ns = p99;
  m.noise_fraction = fraction;
  return m;
}

TEST(WindowTracker, ClosesFixedWindowsIncludingEmptyOnes) {
  WindowTracker tracker(kNsPerMs, /*n_cpus=*/2);
  std::vector<WindowMetrics> closed;
  const WindowTracker::Sink sink = [&closed](const WindowMetrics& m) {
    closed.push_back(m);
  };
  tracker.start(0);
  tracker.advance(100 * kNsPerUs, sink);
  tracker.observe(noise::NoiseCategory::kPeriodic, 100 * kNsPerUs, 50 * kNsPerUs);
  tracker.observe(noise::NoiseCategory::kIo, 200 * kNsPerUs, 30 * kNsPerUs);
  // Jump 3 windows ahead: window 0 closes with the observations, windows 1
  // and 2 close empty (silence is data for the baseline).
  tracker.advance(3 * kNsPerMs + 1, sink);
  ASSERT_EQ(closed.size(), 3u);
  EXPECT_EQ(closed[0].intervals, 2u);
  EXPECT_EQ(closed[0].noise_sum_ns, 80 * kNsPerUs);
  // Fraction normalizes by window * n_cpus: 80us / (1ms * 2).
  EXPECT_DOUBLE_EQ(closed[0].noise_fraction, 0.04);
  EXPECT_DOUBLE_EQ(closed[0].cat_share(static_cast<std::size_t>(noise::NoiseCategory::kIo)),
                   30.0 / 80.0);
  EXPECT_GT(closed[0].p99_ns, 0u);
  EXPECT_EQ(closed[1].intervals, 0u);
  EXPECT_EQ(closed[2].intervals, 0u);
  EXPECT_EQ(closed[1].start_ns, kNsPerMs);

  // flush closes a partial tail window only when it holds observations.
  tracker.observe(noise::NoiseCategory::kPeriodic, 3 * kNsPerMs + 2, kNsPerUs);
  tracker.flush(3 * kNsPerMs + 500, sink);
  EXPECT_EQ(closed.size(), 4u);
}

TEST(RegressionDetector, OneAlertPerSustainedExcursionWithRearm) {
  DetectorOptions opts;
  opts.warmup_windows = 4;
  opts.sustain = 3;
  opts.clear = 2;
  RegressionDetector det(opts);

  for (int i = 0; i < 4; ++i) det.observe(window_with(0.01, 1'000));
  EXPECT_TRUE(det.armed());
  ASSERT_TRUE(det.alerts().empty());

  // A blip shorter than `sustain` never alerts.
  det.observe(window_with(0.30, 1'000));
  det.observe(window_with(0.30, 1'000));
  det.observe(window_with(0.01, 1'000));
  EXPECT_TRUE(det.alerts().empty());

  // A sustained step alerts exactly once, however long it lasts.
  for (int i = 0; i < 6; ++i) det.observe(window_with(0.30, 1'000));
  ASSERT_EQ(det.alerts().size(), 1u);
  EXPECT_EQ(det.alerts()[0].metric, "noise_fraction");
  EXPECT_GT(det.alerts()[0].observed, det.alerts()[0].threshold);

  // Quiet windows re-arm; a second step is a second alert.
  for (int i = 0; i < 3; ++i) det.observe(window_with(0.01, 1'000));
  for (int i = 0; i < 3; ++i) det.observe(window_with(0.30, 1'000));
  ASSERT_EQ(det.alerts().size(), 2u);
  EXPECT_EQ(det.alerts()[1].id, 2u);
}

TEST(RegressionDetector, OneExcursionMovingSeveralMetricsIsOneAlert) {
  DetectorOptions opts;
  opts.warmup_windows = 4;
  opts.sustain = 2;
  RegressionDetector det(opts);
  for (int i = 0; i < 4; ++i)
    det.observe(window_with(0.01, 1'000, kNsPerMs, noise::NoiseCategory::kPeriodic));
  // The step raises the fraction, the p99 AND shifts all noise into a new
  // category — one event, one alert.
  for (int i = 0; i < 5; ++i)
    det.observe(window_with(0.40, 400'000, kNsPerMs, noise::NoiseCategory::kScheduling));
  EXPECT_EQ(det.alerts().size(), 1u);
}

TEST(RegressionDetector, AbsoluteFloorsSilenceIdleBaselines) {
  DetectorOptions opts;
  opts.warmup_windows = 2;
  opts.sustain = 1;
  RegressionDetector det(opts);
  for (int i = 0; i < 2; ++i) det.observe(window_with(0.0, 0));
  // Tiny deviations over an all-zero baseline stay under the floors.
  for (int i = 0; i < 3; ++i) det.observe(window_with(5e-5, 2'000));
  EXPECT_TRUE(det.alerts().empty());
}

// ---------------------------------------------------------------------------
// Monitor: injection-driven alerting without touching stored bytes
// ---------------------------------------------------------------------------

TEST(Monitor, InjectedNoiseStepRaisesExactlyOneAlertAndStoreStaysExact) {
  TempDir dir("monitor_inject");
  const trace::TraceModel model = make_model(400);  // 4 ms span
  const std::string uncut = write_uncut(model, dir);

  MonitorOptions opts;
  opts.store = small_segments(dir.path() + "/store", kNsPerMs);
  opts.window_ns = 200 * kNsPerUs;
  opts.detector.warmup_windows = 8;
  opts.detector.sustain = 3;
  opts.inject.enabled = true;
  opts.inject.start_ns = 3 * kNsPerMs;
  opts.inject.period_ns = 50 * kNsPerUs;
  opts.inject.duration_ns = 150 * kNsPerUs;
  Monitor mon(opts, model.meta(), model.tasks());
  ASSERT_TRUE(mon.ok());
  for (const auto& rec : model.merged()) mon.ingest(rec);
  mon.finish(model.meta().end_ns);

  EXPECT_EQ(mon.alert_count(), 1u);
  EXPECT_NE(mon.alerts_json().find("\"count\": 1"), std::string::npos);
  EXPECT_NE(mon.status_json().find("\"finished\": true"), std::string::npos);

  // Injection feeds the detector only: the stored segments still answer
  // byte-identically to the uncut trace.
  RollingView view(dir.path() + "/store");
  trace::OsntReader reader(uncut);
  query::Engine engine;
  EXPECT_EQ(view.run(query::Plan{}), engine.run(reader, "", query::Plan{}));
}

TEST(Monitor, QuietReplayRaisesNoAlerts) {
  TempDir dir("monitor_quiet");
  const trace::TraceModel model = make_model(400);
  MonitorOptions opts;
  opts.store = small_segments(dir.path() + "/store", kNsPerMs);
  opts.window_ns = 200 * kNsPerUs;
  opts.detector.warmup_windows = 8;
  Monitor mon(opts, model.meta(), model.tasks());
  for (const auto& rec : model.merged()) mon.ingest(rec);
  mon.finish(model.meta().end_ns);
  // make_model is perfectly periodic: after warmup every window looks like
  // the learned baseline.
  EXPECT_EQ(mon.alert_count(), 0u);
  EXPECT_NE(mon.alerts_json().find("\"count\": 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceCatalog incremental rescan over a store directory
// ---------------------------------------------------------------------------

TEST(SegmentStore, CatalogRefreshSeesNewlySealedSegments) {
  TempDir dir("monitor_catalog");
  const std::string store_dir = dir.path() + "/store";
  std::filesystem::create_directories(store_dir);
  serve::TraceCatalog catalog(store_dir);
  EXPECT_TRUE(catalog.list().empty());

  const trace::TraceModel model = make_model(400);
  SegmentStore store(small_segments(store_dir, kNsPerMs), model.meta(), model.tasks());
  feed(store, model);
  ASSERT_GE(store.segments().size(), 2u);

  // The catalog notices the sealed segments on refresh — no restart, no
  // reconstruction; `.part` files (none left here) stay invisible.
  catalog.refresh();
  const std::vector<serve::TraceEntry> entries = catalog.list();
  ASSERT_EQ(entries.size(), store.segments().size());
  EXPECT_EQ(entries.front().name, "seg-000001");
  for (const serve::TraceEntry& e : entries) EXPECT_EQ(e.error, "") << e.name;
}

}  // namespace
}  // namespace osn::monitor
