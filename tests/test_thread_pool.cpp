// The analysis worker pool: submit/futures, exception propagation,
// parallel_for coverage, drain-on-destruction.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace osn {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, AtLeastOneWorkerEvenWhenAskedForZero) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("shard failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForRunsOnMultipleThreadsWhenAvailable) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  pool.parallel_for(64, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  // The calling thread participates, so at least it shows up; on a
  // multi-core host the workers do too. Either way every index ran.
  EXPECT_GE(seen.size(), 1u);
}

TEST(ThreadPool, ParallelForZeroIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i)
      pool.submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, ResolveJobs) {
  EXPECT_EQ(ThreadPool::resolve_jobs(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_jobs(8), 8u);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1u);  // auto = hardware_concurrency
}

}  // namespace
}  // namespace osn
