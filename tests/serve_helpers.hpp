// Test helpers for the serve layer: temp catalog directories populated with
// small but analyzable v3 traces.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "noise/index_aggregate.hpp"
#include "trace/trace_io.hpp"
#include "trace_builder.hpp"

namespace osn::serve::testing {

/// A throwaway directory under the gtest temp root; removed on destruction.
class TempDir {
 public:
  explicit TempDir(const char* tag) {
    std::string tmpl = ::testing::TempDir() + "osn_serve_" + tag + "_XXXXXX";
    path_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A small two-rank trace with enough kernel activity for a non-trivial
/// analysis (irq + page-fault pairs on two CPUs over ~2 ms).
inline trace::TraceModel make_model(int scale = 200) {
  osn::testing::TraceBuilder b(2);
  b.task(1, "rank0", true).task(2, "rank1", true).task(9, "events/0", false, true);
  for (int i = 0; i < scale; ++i) {
    const TimeNs base = static_cast<TimeNs>(i) * 10'000;
    b.pair(0, base + 1'000, base + 1'700, 1, trace::EventType::kIrqEntry, 0);
    b.pair(1, base + 4'000, base + 4'900, 2, trace::EventType::kPageFaultEntry, 0);
  }
  return b.build(static_cast<TimeNs>(scale) * 10'000 + 1);
}

/// Writes `model` as a chunked v3 file `<dir>/<name>.osnt`. Published by
/// rename, never by truncating in place: OsntReader keeps the inode open, so
/// an in-place rewrite would corrupt reads through outstanding catalog leases.
inline void write_trace(const trace::TraceModel& model, const std::string& dir,
                        const std::string& name) {
  const std::string final_path = dir + "/" + name + ".osnt";
  const std::string tmp_path = final_path + ".tmp";
  {
    trace::OsntStreamWriter writer(tmp_path, /*chunk_records=*/128);
    // Mirror production traces: carry pre-aggregates so the server's
    // index-only summary path is exercised by the serve tests.
    writer.set_aggregator(std::make_unique<noise::IndexAggregator>());
    for (const auto& rec : model.merged()) writer.append(rec);
    ASSERT_TRUE(writer.finish(model.meta(), model.tasks()));
  }
  std::filesystem::rename(tmp_path, final_path);
}

}  // namespace osn::serve::testing
