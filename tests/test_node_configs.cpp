// Property sweep over node configurations: the simulator and analysis must
// behave consistently for any CPU count and tick rate.
#include <gtest/gtest.h>

#include <tuple>

#include "kernel_helpers.hpp"
#include "noise/analysis.hpp"

namespace osn::kernel {
namespace {

using osn::testing::compute_program;
using osn::testing::KernelRun;

class NodeConfigSweep
    : public ::testing::TestWithParam<std::tuple<std::uint16_t, DurNs>> {};

TEST_P(NodeConfigSweep, TickRateMatchesConfigAndTraceValidates) {
  const auto [n_cpus, tick] = GetParam();
  NodeConfig cfg;
  cfg.n_cpus = n_cpus;
  cfg.tick_period = tick;
  KernelRun run(cfg);
  for (std::uint16_t c = 0; c < n_cpus; ++c)
    run.kernel->spawn("t" + std::to_string(c), compute_program(ms(200), 1), true,
                      static_cast<CpuId>(c));
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(30));
  const auto model = run.finish();
  ASSERT_EQ(model.validate(), "");

  noise::NoiseAnalysis analysis(model);
  const auto stats = analysis.activity_stats(noise::ActivityKind::kTimerIrq);
  const double expected_freq = 1e9 / static_cast<double>(tick);
  EXPECT_NEAR(stats.freq_ev_per_sec, expected_freq, expected_freq * 0.06);
  // Every application rank accrues periodic noise.
  for (const Pid pid : model.app_pids()) {
    const auto bd = analysis.category_breakdown(pid);
    EXPECT_GT(bd[static_cast<std::size_t>(noise::NoiseCategory::kPeriodic)], 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NodeConfigSweep,
    ::testing::Combine(::testing::Values<std::uint16_t>(1, 2, 4, 8),
                       ::testing::Values<DurNs>(10 * kNsPerMs, 4 * kNsPerMs)));

TEST(NodeConfigs, RebalancePeriodZeroDisablesRebalance) {
  NodeConfig cfg;
  cfg.n_cpus = 2;
  cfg.rebalance_period_ticks = 0;
  KernelRun run(cfg);
  run.kernel->spawn("t", compute_program(ms(100), 1), true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  noise::NoiseAnalysis analysis(model);
  EXPECT_EQ(analysis.activity_stats(noise::ActivityKind::kRebalanceSoftirq).count, 0u);
}

TEST(NodeConfigs, RcuPeriodZeroDisablesRcu) {
  NodeConfig cfg;
  cfg.rcu_period_ticks = 0;
  KernelRun run(cfg);
  run.kernel->spawn("t", compute_program(ms(100), 1), true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  noise::NoiseAnalysis analysis(model);
  EXPECT_EQ(analysis.activity_stats(noise::ActivityKind::kRcuSoftirq).count, 0u);
}

TEST(NodeConfigs, FilteredSinkDropsEventsEndToEnd) {
  // The paper's "filters" applied at the tracing layer: disabling the page
  // fault tracepoints removes them from the offline analysis entirely.
  trace::VectorSink inner;
  trace::FilteredSink filtered(inner);
  filtered.set_enabled(trace::EventType::kPageFaultEntry, false);
  filtered.set_enabled(trace::EventType::kPageFaultExit, false);

  NodeConfig cfg;
  Kernel kernel(cfg, osn::testing::fixed_models(), filtered);
  const Pid pid = kernel.spawn(
      "t",
      std::make_unique<osn::testing::ScriptProgram>(
          std::vector<Action>{ActTouch{0, 0, 10}, ActCompute{ms(1)}}),
      true, 0);
  kernel.add_region(pid, 16, trace::PageFaultKind::kMinorAnon);
  kernel.start();
  kernel.run_until_apps_done(sec(10));
  trace::TraceMeta meta = kernel.finish("filtered");
  const auto model = build_trace_model(std::move(meta), inner.records(),
                                       kernel.task_infos());
  // Faults happened (kernel counted them) but were filtered from the trace.
  EXPECT_EQ(kernel.task(pid).fault_count, 10u);
  for (const auto& rec : model.cpu_events(0)) {
    EXPECT_NE(static_cast<trace::EventType>(rec.event),
              trace::EventType::kPageFaultEntry);
  }
}

}  // namespace
}  // namespace osn::kernel
