// serve wire protocol: JSON parsing, request validation, response framing.
#include <gtest/gtest.h>

#include "serve/protocol.hpp"

namespace osn::serve {
namespace {

// --------------------------------------------------------------------------
// JSON parser
// --------------------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_EQ(parse_json("null")->kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(parse_json("true")->boolean);
  EXPECT_FALSE(parse_json("false")->boolean);
  EXPECT_DOUBLE_EQ(parse_json("42")->number, 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-1.5e3")->number, -1500.0);
  EXPECT_EQ(parse_json("\"hi\"")->string, "hi");
}

TEST(JsonParse, NestedStructures) {
  const auto v = parse_json(R"({"a":[1,2,{"b":"c"}],"d":{"e":null}})");
  ASSERT_TRUE(v.has_value());
  const JsonValue* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[2].find("b")->string, "c");
  EXPECT_EQ(v->find("d")->find("e")->kind, JsonValue::Kind::kNull);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\nb\t\"\\A")")->string, "a\nb\t\"\\A");
  // Surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parse_json(R"("😀")")->string, "\xF0\x9F\x98\x80");
  // Lone surrogates are invalid.
  EXPECT_FALSE(parse_json(R"("\ud83d")").has_value());
  EXPECT_FALSE(parse_json(R"("\ude00")").has_value());
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_FALSE(parse_json("").has_value());
  EXPECT_FALSE(parse_json("{").has_value());
  EXPECT_FALSE(parse_json("{\"a\":1,}").has_value());
  EXPECT_FALSE(parse_json("[1 2]").has_value());
  EXPECT_FALSE(parse_json("\"unterminated").has_value());
  EXPECT_FALSE(parse_json("tru").has_value());
  EXPECT_FALSE(parse_json("1e").has_value());
  EXPECT_FALSE(parse_json("{} trailing").has_value());
  EXPECT_FALSE(parse_json("\"raw\ncontrol\"").has_value());
}

TEST(JsonParse, DepthBounded) {
  // Hostile deeply-nested input must fail cleanly, not blow the stack.
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += '[';
  for (int i = 0; i < 2000; ++i) deep += ']';
  EXPECT_FALSE(parse_json(deep).has_value());
}

// --------------------------------------------------------------------------
// Requests
// --------------------------------------------------------------------------

TEST(RequestParse, MinimalAndRoundTrip) {
  std::string error;
  const auto ping = parse_request(R"({"op":"ping"})", error);
  ASSERT_TRUE(ping.has_value()) << error;
  EXPECT_EQ(ping->op, Op::kPing);
  EXPECT_EQ(ping->id, 0u);

  Request req;
  req.id = 7;
  req.op = Op::kWindow;
  req.trace = "ftq";
  req.has_window = true;
  req.window_from_ms = 100.5;
  req.window_to_ms = 900;
  req.task = 3;
  req.quantum_us = 500;
  req.deadline = 250 * kNsPerMs;
  const auto back = parse_request(req.to_line(), error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->id, 7u);
  EXPECT_EQ(back->op, Op::kWindow);
  EXPECT_EQ(back->trace, "ftq");
  EXPECT_TRUE(back->has_window);
  EXPECT_DOUBLE_EQ(back->window_from_ms, 100.5);
  EXPECT_DOUBLE_EQ(back->window_to_ms, 900.0);
  ASSERT_TRUE(back->task.has_value());
  EXPECT_EQ(*back->task, 3u);
  EXPECT_EQ(back->quantum_us, 500u);
  ASSERT_TRUE(back->deadline.has_value());
  EXPECT_EQ(*back->deadline, 250 * kNsPerMs);
}

TEST(RequestParse, Validation) {
  std::string error;
  EXPECT_FALSE(parse_request("not json", error).has_value());
  EXPECT_FALSE(parse_request("[1,2]", error).has_value());
  EXPECT_FALSE(parse_request(R"({"id":1})", error).has_value());  // no op
  EXPECT_FALSE(parse_request(R"({"op":"explode"})", error).has_value());
  // Trace-addressed ops require a trace name.
  EXPECT_FALSE(parse_request(R"({"op":"summary"})", error).has_value());
  // The window op requires a window, and windows must be ordered.
  EXPECT_FALSE(parse_request(R"({"op":"window","trace":"t"})", error).has_value());
  EXPECT_FALSE(
      parse_request(R"({"op":"window","trace":"t","window":[900,100]})", error)
          .has_value());
  EXPECT_FALSE(
      parse_request(R"({"op":"window","trace":"t","window":[-5,100]})", error)
          .has_value());
  EXPECT_FALSE(
      parse_request(R"({"op":"window","trace":"t","window":[100]})", error).has_value());
  // Numeric fields must be non-negative integers.
  EXPECT_FALSE(parse_request(R"({"op":"ping","id":-1})", error).has_value());
  EXPECT_FALSE(parse_request(R"({"op":"ping","id":1.5})", error).has_value());
  EXPECT_FALSE(
      parse_request(R"({"op":"chart","trace":"t","quantum_us":0})", error).has_value());
}

TEST(RequestParse, HostileNumericBoundsRejected) {
  std::string error;
  // Casting a double >= 2^64 to uint64_t is UB; such values must not reach
  // the cast. 1e300 is an exact non-negative integer as a double.
  EXPECT_FALSE(parse_request(R"({"op":"ping","id":1e300})", error).has_value());
  EXPECT_FALSE(parse_request(R"({"op":"ping","id":18446744073709551616})", error)
                   .has_value());
  // 2^61 is exactly representable and passes the integer check, but
  // quantum_us * 1000 would wrap to 0 and the chart bucket division would
  // SIGFPE the daemon. Must be rejected at parse time.
  EXPECT_FALSE(
      parse_request(R"({"op":"chart","trace":"t","quantum_us":2305843009213693952})",
                    error)
          .has_value());
  // A large but representable value stays in range for the field itself
  // (id has no semantic bound; 2^53 - 1 is the largest exact odd integer).
  EXPECT_TRUE(parse_request(R"({"op":"ping","id":9007199254740991})", error)
                  .has_value())
      << error;
  EXPECT_EQ(parse_request(R"({"op":"ping","id":9007199254740991})", error)->id,
            9007199254740991ull);
}

TEST(RequestParse, HugeDeadlineSaturatesInsteadOfWrapping) {
  std::string error;
  // deadline_ms * 1e6 would wrap for large values, spuriously turning a huge
  // requested budget into a tiny one; it must saturate to "never" instead.
  const auto req = parse_request(R"({"op":"ping","deadline_ms":1000000000000000})",
                                 error);
  ASSERT_TRUE(req.has_value()) << error;
  ASSERT_TRUE(req->deadline.has_value());
  EXPECT_EQ(*req->deadline, kTimeInfinity);
}

TEST(RequestParse, StallIsCapped) {
  std::string error;
  const auto req = parse_request(R"({"op":"ping","stall_ms":999999})", error);
  ASSERT_TRUE(req.has_value()) << error;
  EXPECT_EQ(req->stall, 10'000 * kNsPerMs);  // capped at 10 s
}

// --------------------------------------------------------------------------
// Responses
// --------------------------------------------------------------------------

TEST(Response, MultiLinePayloadSurvivesFraming) {
  // Payloads are whole JSON documents with newlines; the response line must
  // carry them byte-exactly without breaking the one-line-per-message frame.
  const std::string doc = "{\n  \"workload\": \"ftq \\ é\",\n  \"n\": 3\n}\n";
  const Response out = Response::success(9, doc);
  const std::string line = out.to_line();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto back = parse_response(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->ok);
  EXPECT_EQ(back->id, 9u);
  EXPECT_EQ(back->payload, doc);
}

TEST(Response, FailureRoundTrip) {
  const Response out = Response::failure(4, errc::kDeadlineExceeded, "too slow");
  const auto back = parse_response(out.to_line());
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->ok);
  EXPECT_EQ(back->error, errc::kDeadlineExceeded);
  EXPECT_EQ(back->message, "too slow");
}

TEST(Response, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_response("garbage").has_value());
  EXPECT_FALSE(parse_response(R"({"id":1})").has_value());                 // no ok
  EXPECT_FALSE(parse_response(R"({"id":1,"ok":true})").has_value());      // no payload
  EXPECT_FALSE(parse_response(R"({"id":1,"ok":false})").has_value());     // no error
}

// --------------------------------------------------------------------------
// OSNB binary envelope
// --------------------------------------------------------------------------

TEST(Osnb, RequestRoundTripsEveryField) {
  Request req;
  req.id = 0xDEADBEEFull;
  req.op = Op::kWindow;
  req.trace = "ftq";
  req.has_window = true;
  req.window_from_ms = 100.5;
  req.window_to_ms = 900.25;
  req.task = 42;
  req.quantum_us = 500;
  req.cpu = 3;
  req.activity = "irq";
  req.k = 12;
  req.deadline = 250 * kNsPerMs;
  req.stall = 7 * kNsPerMs;

  std::string error;
  const auto back = parse_request_osnb(request_to_osnb(req), error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->id, req.id);
  EXPECT_EQ(back->op, Op::kWindow);
  EXPECT_EQ(back->trace, "ftq");
  EXPECT_TRUE(back->has_window);
  EXPECT_DOUBLE_EQ(back->window_from_ms, 100.5);
  EXPECT_DOUBLE_EQ(back->window_to_ms, 900.25);
  ASSERT_TRUE(back->task.has_value());
  EXPECT_EQ(*back->task, 42u);
  EXPECT_EQ(back->quantum_us, 500u);
  ASSERT_TRUE(back->cpu.has_value());
  EXPECT_EQ(*back->cpu, 3u);
  EXPECT_EQ(back->activity, "irq");
  EXPECT_EQ(back->k, 12u);
  ASSERT_TRUE(back->deadline.has_value());
  EXPECT_EQ(*back->deadline, 250 * kNsPerMs);
  EXPECT_EQ(back->stall, 7 * kNsPerMs);
}

TEST(Osnb, MinimalRequestKeepsDefaults) {
  Request req;  // ping with all defaults
  std::string error;
  const auto back = parse_request_osnb(request_to_osnb(req), error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->op, Op::kPing);
  EXPECT_EQ(back->id, 0u);
  EXPECT_FALSE(back->has_window);
  EXPECT_FALSE(back->task.has_value());
  EXPECT_FALSE(back->cpu.has_value());
  EXPECT_FALSE(back->deadline.has_value());
  EXPECT_EQ(back->quantum_us, 1000u);
  EXPECT_EQ(back->k, 5u);
}

// The monitoring ops are trace-less daemon queries; both wires must accept
// them without a trace name and agree on identity after the Op renumbering.
TEST(Osnb, MonitorOpsRoundTripOnBothWires) {
  static constexpr struct {
    Op op;
    const char* name;
  } kOps[] = {{Op::kRefresh, "refresh"},
              {Op::kAlerts, "alerts"},
              {Op::kMonitorStatus, "monitor_status"}};
  std::string error;
  for (const auto& [op, name] : kOps) {
    Request req;
    req.id = 11;
    req.op = op;

    const auto via_json = parse_request(req.to_line(), error);
    ASSERT_TRUE(via_json.has_value()) << name << ": " << error;
    EXPECT_EQ(via_json->op, op) << name;
    EXPECT_EQ(via_json->id, 11u) << name;
    EXPECT_NE(req.to_line().find(std::string("\"") + name + "\""), std::string::npos)
        << name;

    const auto via_osnb = parse_request_osnb(request_to_osnb(req), error);
    ASSERT_TRUE(via_osnb.has_value()) << name << ": " << error;
    EXPECT_EQ(via_osnb->op, op) << name;
    EXPECT_EQ(via_osnb->id, 11u) << name;
  }
}

TEST(Osnb, RequestEnforcesJsonParserBounds) {
  // The two wires must agree on what a valid request is: values the JSON
  // parser rejects must not sneak in through the binary door.
  std::string error;

  Request bad_window;
  bad_window.op = Op::kWindow;
  bad_window.trace = "t";
  bad_window.has_window = true;
  bad_window.window_from_ms = 900;
  bad_window.window_to_ms = 100;  // reversed
  EXPECT_FALSE(parse_request_osnb(request_to_osnb(bad_window), error).has_value());

  Request no_window;
  no_window.op = Op::kWindow;  // window op without a window
  no_window.trace = "t";
  EXPECT_FALSE(parse_request_osnb(request_to_osnb(no_window), error).has_value());

  Request no_trace;
  no_trace.op = Op::kSummary;  // trace-addressed op without a trace
  EXPECT_FALSE(parse_request_osnb(request_to_osnb(no_trace), error).has_value());

  Request zero_quantum;
  zero_quantum.op = Op::kChart;
  zero_quantum.trace = "t";
  zero_quantum.quantum_us = 0;
  EXPECT_FALSE(parse_request_osnb(request_to_osnb(zero_quantum), error).has_value());

  Request huge_stall;
  huge_stall.stall = 600'000 * kNsPerMs;
  const auto capped = parse_request_osnb(request_to_osnb(huge_stall), error);
  ASSERT_TRUE(capped.has_value()) << error;
  EXPECT_EQ(capped->stall, 10'000 * kNsPerMs);  // same 10 s cap as stall_ms
}

TEST(Osnb, RequestParserRejectsMangledFrames) {
  Request req;
  req.op = Op::kSummary;
  req.trace = "ftq";
  const std::string good = request_to_osnb(req);
  std::string error;
  ASSERT_TRUE(parse_request_osnb(good, error).has_value()) << error;

  // Every truncation must fail cleanly (a frame is complete by construction;
  // a short one is corruption, not "need more").
  for (std::size_t cut = 0; cut < good.size(); ++cut)
    EXPECT_FALSE(parse_request_osnb(good.substr(0, cut), error).has_value())
        << "cut at " << cut;

  // Trailing bytes are a framing bug, not padding.
  EXPECT_FALSE(parse_request_osnb(good + "x", error).has_value());

  // Wrong tag (a response tag on the request path).
  std::string wrong_tag = good;
  wrong_tag[0] = '\x02';
  EXPECT_FALSE(parse_request_osnb(wrong_tag, error).has_value());

  // Unknown op and unknown flag bits must be rejected, not ignored —
  // otherwise old servers silently misread new clients.
  std::string bad_op = good;
  bad_op[2] = '\x7F';
  EXPECT_FALSE(parse_request_osnb(bad_op, error).has_value());
  std::string bad_flags = good;
  bad_flags[3] = static_cast<char>(0x80);
  EXPECT_FALSE(parse_request_osnb(bad_flags, error).has_value());
}

TEST(Osnb, ResponseSuccessRoundTripPreservesDocumentBytes) {
  // The whole point of the binary wire: the payload document is carried
  // verbatim, newlines and UTF-8 included, with no escaping layer.
  const std::string doc = "{\n  \"workload\": \"ftq \\ é\",\n  \"n\": 3\n}\n";
  const Response out = Response::success(9, doc);
  const auto back = parse_response_osnb(response_to_osnb(out));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->ok);
  EXPECT_EQ(back->id, 9u);
  EXPECT_EQ(back->payload, doc);
}

TEST(Osnb, ResponseFailureRoundTrip) {
  const Response out = Response::failure(4, errc::kDeadlineExceeded, "too slow");
  const auto back = parse_response_osnb(response_to_osnb(out));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->ok);
  EXPECT_EQ(back->id, 4u);
  EXPECT_EQ(back->error, errc::kDeadlineExceeded);
  EXPECT_EQ(back->message, "too slow");
}

TEST(Osnb, ResponseParserRejectsMangledFrames) {
  const std::string good = response_to_osnb(Response::success(1, "{}\n"));
  ASSERT_TRUE(parse_response_osnb(good).has_value());
  for (std::size_t cut = 0; cut < good.size(); ++cut)
    EXPECT_FALSE(parse_response_osnb(good.substr(0, cut)).has_value())
        << "cut at " << cut;
  EXPECT_FALSE(parse_response_osnb(good + "x").has_value());
  std::string wrong_tag = good;
  wrong_tag[0] = '\x01';
  EXPECT_FALSE(parse_response_osnb(wrong_tag).has_value());
}

}  // namespace
}  // namespace osn::serve
