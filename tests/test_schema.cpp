#include <gtest/gtest.h>

#include <set>

#include "trace/schema.hpp"

namespace osn::trace {
namespace {

TEST(Schema, EntryExitPartition) {
  for (std::uint16_t e = 1; e < static_cast<std::uint16_t>(EventType::kMaxEvent); ++e) {
    const auto t = static_cast<EventType>(e);
    EXPECT_FALSE(is_entry(t) && is_exit(t)) << event_name(t);
  }
}

TEST(Schema, EveryEntryHasMatchingExit) {
  for (std::uint16_t e = 1; e < static_cast<std::uint16_t>(EventType::kMaxEvent); ++e) {
    const auto t = static_cast<EventType>(e);
    if (!is_entry(t)) continue;
    const EventType exit = exit_of(t);
    EXPECT_TRUE(is_exit(exit)) << event_name(t);
    EXPECT_EQ(entry_of(exit), t) << event_name(t);
  }
}

TEST(Schema, EntryOfNonExitDies) {
  EXPECT_DEATH(entry_of(EventType::kSchedSwitch), "non-exit");
  EXPECT_DEATH(exit_of(EventType::kIrqExit), "");
}

TEST(Schema, NamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (std::uint16_t e = 0; e < static_cast<std::uint16_t>(EventType::kMaxEvent); ++e) {
    const auto name = event_name(static_cast<EventType>(e));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << name;
  }
}

TEST(Schema, PaperActivityNamesPresent) {
  EXPECT_EQ(softirq_name(SoftirqNr::kTimer), "run_timer_softirq");
  EXPECT_EQ(softirq_name(SoftirqNr::kSched), "run_rebalance_domains");
  EXPECT_EQ(softirq_name(SoftirqNr::kRcu), "rcu_process_callbacks");
  EXPECT_EQ(tasklet_name(TaskletId::kNetRx), "net_rx_action");
  EXPECT_EQ(tasklet_name(TaskletId::kNetTx), "net_tx_action");
  EXPECT_EQ(irq_name(IrqVector::kTimer), "timer_interrupt");
}

// Switch-argument packing round-trips for boundary pid values.
class SwitchPacking : public ::testing::TestWithParam<std::tuple<Pid, Pid, bool>> {};

TEST_P(SwitchPacking, RoundTrips) {
  const auto [prev, next, runnable] = GetParam();
  const SwitchArg in{prev, next, runnable};
  const SwitchArg out = unpack_switch(pack_switch(in));
  EXPECT_EQ(out.prev, prev);
  EXPECT_EQ(out.next, next);
  EXPECT_EQ(out.prev_runnable, runnable);
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, SwitchPacking,
    ::testing::Combine(::testing::Values<Pid>(0, 1, 255, (1u << 24) - 1),
                       ::testing::Values<Pid>(0, 7, (1u << 24) - 1),
                       ::testing::Bool()));

TEST(SwitchPacking, OversizedPidDies) {
  EXPECT_DEATH(pack_switch({1u << 24, 0, false}), "");
}

TEST(MigratePacking, RoundTrips) {
  for (Pid pid : {Pid{0}, Pid{123}, Pid{(1u << 24) - 1}}) {
    for (CpuId cpu : {CpuId{0}, CpuId{7}, CpuId{255}}) {
      const std::uint64_t packed = pack_migrate(pid, cpu);
      EXPECT_EQ(unpack_migrate_pid(packed), pid);
      EXPECT_EQ(unpack_migrate_cpu(packed), cpu);
    }
  }
}

TEST(MakeRecord, FillsAllFields) {
  const auto r = make_record(123, 4, 56, EventType::kIrqEntry, 789);
  EXPECT_EQ(r.timestamp, 123u);
  EXPECT_EQ(r.cpu, 4u);
  EXPECT_EQ(r.pid, 56u);
  EXPECT_EQ(static_cast<EventType>(r.event), EventType::kIrqEntry);
  EXPECT_EQ(r.arg, 789u);
}

}  // namespace
}  // namespace osn::trace
