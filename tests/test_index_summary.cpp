// Index-resident pre-aggregates: the write-time IndexAggregator plus the
// exporter's index-only summary must reproduce the record-decode summary
// byte for byte — on crafted traces, on randomized ones, at any chunk size —
// and must refuse (fall back, never fabricate) whenever the file cannot
// support the fast path.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <iterator>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "export/index_summary.hpp"
#include "export/json.hpp"
#include "noise/analysis.hpp"
#include "noise/index_aggregate.hpp"
#include "trace/osnt_reader.hpp"
#include "trace/trace_io.hpp"
#include "trace_builder.hpp"

namespace osn {
namespace {

using osn::testing::TraceBuilder;
using trace::EventType;

std::string temp_path(const char* tag) {
  static int counter = 0;
  return ::testing::TempDir() + "osn_idxsum_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++) + ".osnt";
}

std::string write_v3(const trace::TraceModel& model, bool with_aggregator,
                     std::size_t chunk_records, const char* tag) {
  const std::string path = temp_path(tag);
  trace::OsntStreamWriter writer(path, chunk_records);
  EXPECT_TRUE(writer.ok());
  if (with_aggregator)
    writer.set_aggregator(std::make_unique<noise::IndexAggregator>());
  for (const auto& rec : model.merged()) writer.append(rec);
  EXPECT_TRUE(writer.finish(model.meta(), model.tasks()));
  return path;
}

/// The slow path the fast path is measured against: full record decode,
/// default-options analysis, JSON render.
std::string slow_summary(trace::OsntReader& reader) {
  const trace::TraceModel model = reader.read_all();
  const noise::NoiseAnalysis analysis(model);
  return exporter::summary_json(analysis);
}

/// A deterministic trace exercising every aggregate dimension: nested kernel
/// intervals, preemption (closed and dangling), communication windows
/// (closed and dangling), activity from app and non-app tasks.
trace::TraceModel crafted_model() {
  TraceBuilder b(2);
  b.task(1, "rank0", true).task(2, "rank1", true).task(9, "kswapd", false, true);

  // Nested kernel activity on cpu 0 charged to rank0: timer irq inside a
  // syscall (self-time resolution must survive the chunk boundary).
  b.ev(0, 1'000, 1, EventType::kSyscallEntry, 0);
  b.ev(0, 1'200, 1, EventType::kIrqEntry, 0);
  b.ev(0, 1'500, 1, EventType::kIrqExit, 0);
  b.ev(0, 2'000, 1, EventType::kSyscallExit, 0);

  // A communication window for rank1 on cpu 1; the page fault inside it is
  // excluded from noise, the one after it counts.
  b.ev(1, 2'500, 2, EventType::kAppMark,
       static_cast<std::uint64_t>(trace::AppMark::kBarrierEnter));
  b.pair(1, 3'000, 3'400, 2, EventType::kPageFaultEntry, 0);
  b.ev(1, 4'000, 2, EventType::kAppMark,
       static_cast<std::uint64_t>(trace::AppMark::kBarrierExit));
  b.pair(1, 5'000, 5'600, 2, EventType::kPageFaultEntry, 1);

  // rank0 preempted by the daemon (runnable -> counts), then resumed.
  b.ev(0, 6'000, 1, EventType::kSchedSwitch,
       trace::pack_switch({1, 9, /*prev_runnable=*/true}));
  b.pair(0, 6'200, 6'500, 9, EventType::kScheduleEntry, 0);
  b.ev(0, 7'000, 9, EventType::kSchedSwitch,
       trace::pack_switch({9, 1, /*prev_runnable=*/false}));

  // Kernel work charged to the non-app daemon: feeds activity stats but
  // never the noise list.
  b.pair(1, 8'000, 8'300, 9, EventType::kSoftirqEntry,
         static_cast<std::uint64_t>(trace::SoftirqNr::kRcu));

  // Dangling at end-of-trace: rank1 preempted with no closing switch, rank0
  // inside a communication window.
  b.ev(1, 9'000, 2, EventType::kSchedSwitch,
       trace::pack_switch({2, 9, /*prev_runnable=*/true}));
  b.ev(0, 9'500, 1, EventType::kAppMark,
       static_cast<std::uint64_t>(trace::AppMark::kBarrierEnter));
  return b.build(10'000);
}

TEST(IndexSummary, CraftedTraceByteIdentical) {
  const trace::TraceModel model = crafted_model();
  // Chunk sizes from "one chunk" down to "one record per chunk": intervals
  // must attribute correctly however the stream is cut.
  for (const std::size_t chunk_records : {std::size_t{10000}, std::size_t{8},
                                          std::size_t{3}, std::size_t{1}}) {
    const std::string path = write_v3(model, true, chunk_records, "crafted");
    trace::OsntReader reader(path);
    ASSERT_TRUE(reader.index_summary().has_value()) << chunk_records;
    const auto fast = exporter::index_summary_json(reader);
    ASSERT_TRUE(fast.has_value()) << chunk_records;
    EXPECT_EQ(*fast, slow_summary(reader)) << "chunk_records=" << chunk_records;
    std::remove(path.c_str());
  }
}

/// Random but well-formed traces: the state machines in the aggregator and
/// in build_intervals must stay in lockstep on any legal stream.
trace::TraceModel random_model(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  TraceBuilder b(2);
  b.task(1, "rank0", true).task(2, "rank1", true).task(9, "daemon", false, true);

  struct Task {
    bool preempted = false;
    bool in_comm = false;
  };
  std::map<Pid, Task> tasks{{1, {}}, {2, {}}, {9, {}}};

  const std::pair<EventType, std::uint64_t> kinds[] = {
      {EventType::kIrqEntry, 0},      {EventType::kIrqEntry, 1},
      {EventType::kIrqEntry, 2},      {EventType::kSoftirqEntry, 1},
      {EventType::kSoftirqEntry, 7},  {EventType::kSoftirqEntry, 9},
      {EventType::kSoftirqEntry, 3},  {EventType::kTaskletEntry, 0},
      {EventType::kPageFaultEntry, 2}, {EventType::kSyscallEntry, 5},
      {EventType::kScheduleEntry, 0},
  };
  const Pid pids[] = {1, 2, 9};

  TimeNs t = 1'000;
  const auto step = [&] { return t += 1 + rng() % 400; };
  for (int i = 0; i < 600; ++i) {
    const auto cpu = static_cast<CpuId>(rng() % 2);
    const Pid pid = pids[rng() % 3];
    switch (rng() % 5) {
      case 0:
      case 1: {  // kernel interval, sometimes with a nested child
        const auto& [entry, arg] = kinds[rng() % std::size(kinds)];
        b.ev(cpu, step(), pid, entry, arg);
        if (rng() % 3 == 0) {
          const auto& [nested, narg] = kinds[rng() % std::size(kinds)];
          const TimeNs n0 = step();  // sequenced: argument order is unspecified
          const TimeNs n1 = step();
          b.pair(cpu, n0, n1, pid, nested, narg);
        }
        b.ev(cpu, step(), pid, trace::exit_of(entry), arg);
        break;
      }
      case 2: {  // preemption open/close for an app task
        Task& st = tasks[pid];
        if (pid != 9 && !st.preempted) {
          b.ev(cpu, step(), pid, EventType::kSchedSwitch,
               trace::pack_switch({pid, 9, /*prev_runnable=*/true}));
          st.preempted = true;
        } else if (pid != 9 && st.preempted && rng() % 4 != 0) {
          // leave ~1/4 dangling until end-of-trace
          b.ev(cpu, step(), 9, EventType::kSchedSwitch,
               trace::pack_switch({9, pid, /*prev_runnable=*/false}));
          st.preempted = false;
        }
        break;
      }
      case 3: {  // communication window toggle
        Task& st = tasks[pid];
        const auto mark = st.in_comm ? trace::AppMark::kBarrierExit
                                     : trace::AppMark::kBarrierEnter;
        if (st.in_comm || rng() % 3 != 0) {  // leave some windows open
          b.ev(cpu, step(), pid, EventType::kAppMark,
               static_cast<std::uint64_t>(mark));
          st.in_comm = !st.in_comm;
        }
        break;
      }
      case 4:  // point events the analyzer ignores
        b.ev(cpu, step(), pid, EventType::kSchedWakeup, pid);
        break;
    }
  }
  return b.build(t + 1'000);
}

TEST(IndexSummary, RandomizedTracesByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const trace::TraceModel model = random_model(seed);
    const std::size_t chunk_records = 1 + seed * 37 % 200;
    const std::string path = write_v3(model, true, chunk_records, "random");
    trace::OsntReader reader(path);
    ASSERT_TRUE(reader.index_summary().has_value()) << "seed " << seed;
    const auto fast = exporter::index_summary_json(reader);
    ASSERT_TRUE(fast.has_value()) << "seed " << seed;
    EXPECT_EQ(*fast, slow_summary(reader)) << "seed " << seed;
    std::remove(path.c_str());
  }
}

TEST(IndexSummary, FileWithoutAggregatorFallsBack) {
  const std::string path = write_v3(crafted_model(), false, 64, "noagg");
  trace::OsntReader reader(path);
  EXPECT_FALSE(reader.index_summary().has_value());
  EXPECT_FALSE(exporter::index_summary_json(reader).has_value());
  EXPECT_TRUE(reader.verify().clean());
  std::remove(path.c_str());
}

TEST(IndexSummary, LegacyFormatFallsBack) {
  const std::string path = temp_path("legacy");
  ASSERT_TRUE(trace::write_trace_file(crafted_model(), path));
  trace::OsntReader reader(path);
  ASSERT_NE(reader.version(), 3u);
  EXPECT_FALSE(reader.index_summary().has_value());
  EXPECT_FALSE(exporter::index_summary_json(reader).has_value());
  std::remove(path.c_str());
}

TEST(IndexSummary, MalformedStreamVetoesAggregates) {
  // Double BarrierEnter moves the window start in build_intervals — not
  // representable as streaming state, so the aggregator must veto the block
  // (no aggregates written) rather than ship subtly wrong exclusions.
  TraceBuilder b(1);
  b.task(1, "rank0", true);
  b.ev(0, 1'000, 1, EventType::kAppMark,
       static_cast<std::uint64_t>(trace::AppMark::kBarrierEnter));
  b.pair(0, 1'500, 1'800, 1, EventType::kIrqEntry, 0);
  b.ev(0, 2'000, 1, EventType::kAppMark,
       static_cast<std::uint64_t>(trace::AppMark::kBarrierEnter));
  b.ev(0, 3'000, 1, EventType::kAppMark,
       static_cast<std::uint64_t>(trace::AppMark::kBarrierExit));
  const trace::TraceModel model = b.build(4'000);

  const std::string path = write_v3(model, true, 64, "veto");
  trace::OsntReader reader(path);
  EXPECT_FALSE(reader.index_summary().has_value());
  EXPECT_TRUE(reader.verify().clean());  // the file itself is fine
  std::remove(path.c_str());
}

TEST(IndexSummary, DamagedAggregateBlockFallsBackWithCorrectNumbers) {
  const trace::TraceModel model = crafted_model();
  const std::string clean_path = write_v3(model, true, 8, "damage_ref");
  std::string expected;
  {
    trace::OsntReader reader(clean_path);
    expected = slow_summary(reader);
  }

  // Corrupt one byte shortly after the aggregate block magic ("OSNA").
  std::FILE* f = std::fopen(clean_path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::vector<unsigned char> bytes(static_cast<std::size_t>(size));
  std::fseek(f, 0, SEEK_SET);
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  long magic_at = -1;
  for (std::size_t i = 0; i + 4 <= bytes.size(); ++i) {
    if (bytes[i] == 'O' && bytes[i + 1] == 'S' && bytes[i + 2] == 'N' &&
        bytes[i + 3] == 'A') {
      magic_at = static_cast<long>(i);
      break;
    }
  }
  ASSERT_GE(magic_at, 0) << "aggregate block magic not found";
  std::fseek(f, magic_at + 6, SEEK_SET);
  const unsigned char flipped = bytes[static_cast<std::size_t>(magic_at) + 6] ^ 0xff;
  ASSERT_EQ(std::fwrite(&flipped, 1, 1, f), 1u);
  std::fclose(f);

  trace::OsntReader reader(clean_path);
  // The damaged block is dropped and reported, never served.
  EXPECT_FALSE(reader.index_summary().has_value());
  EXPECT_FALSE(reader.index_recovered());
  EXPECT_FALSE(exporter::index_summary_json(reader).has_value());
  const trace::VerifyReport report = reader.verify();
  EXPECT_FALSE(report.intact());
  // The record data is untouched: the slow path still gives exact numbers.
  EXPECT_EQ(slow_summary(reader), expected);
  std::remove(clean_path.c_str());
}

TEST(IndexSummary, TruncatedFileFallsBack) {
  const trace::TraceModel model = crafted_model();
  const std::string path = temp_path("trunc");
  {
    trace::OsntStreamWriter writer(path, /*chunk_records=*/4);
    writer.set_aggregator(std::make_unique<noise::IndexAggregator>());
    for (const auto& rec : model.merged()) writer.append(rec);
    // No finish(): the destructor writes the truncation sentinel.
  }
  trace::OsntReader reader(path);
  EXPECT_TRUE(reader.truncated());
  EXPECT_FALSE(reader.index_summary().has_value());
  EXPECT_FALSE(exporter::index_summary_json(reader).has_value());
  std::remove(path.c_str());
}

// The explicit-block overload (used by the rolling segment store to render
// many segments' folded aggregates) must be the same computation as the
// reader overload: handing it the reader's own block, meta and tasks yields
// byte-identical output.
TEST(IndexSummary, ExplicitBlockOverloadMatchesReaderOverload) {
  const trace::TraceModel model = crafted_model();
  const std::string path = write_v3(model, true, 8, "overload");
  trace::OsntReader reader(path);
  const auto via_reader = exporter::index_summary_data(reader);
  ASSERT_TRUE(via_reader.has_value());
  ASSERT_TRUE(reader.index_summary().has_value());
  const auto via_block = exporter::index_summary_data(*reader.index_summary(),
                                                      reader.meta(), reader.tasks());
  ASSERT_TRUE(via_block.has_value());
  EXPECT_EQ(exporter::render_summary(*via_block),
            exporter::render_summary(*via_reader));

  // And the refusal behavior carries over: an out-of-range category id in
  // the block makes the explicit overload decline too.
  trace::IndexSummary bad = *reader.index_summary();
  bad.tail.noise.push_back({1, 999, 1, 100});
  EXPECT_FALSE(
      exporter::index_summary_data(bad, reader.meta(), reader.tasks()).has_value());
  std::remove(path.c_str());
}

TEST(IndexSummary, DataMatchesAnalysisFieldByField) {
  // Beyond the rendered bytes: the extracted SummaryData must agree with the
  // analysis-derived one structurally (guards against two bugs cancelling
  // out in the renderer).
  const trace::TraceModel model = crafted_model();
  const std::string path = write_v3(model, true, 8, "fields");
  trace::OsntReader reader(path);
  const auto fast = exporter::index_summary_data(reader);
  ASSERT_TRUE(fast.has_value());

  const trace::TraceModel decoded = reader.read_all();
  const noise::NoiseAnalysis analysis(decoded);
  const exporter::SummaryData slow = exporter::summary_data(analysis);

  EXPECT_EQ(fast->workload, slow.workload);
  EXPECT_EQ(fast->duration_ns, slow.duration_ns);
  EXPECT_EQ(fast->cpus, slow.cpus);
  EXPECT_EQ(fast->events, slow.events);
  EXPECT_EQ(fast->noise_intervals, slow.noise_intervals);
  for (std::size_t k = 0; k < slow.activities.size(); ++k) {
    EXPECT_EQ(fast->activities[k].count, slow.activities[k].count) << k;
    EXPECT_EQ(fast->activities[k].max_ns, slow.activities[k].max_ns) << k;
    EXPECT_EQ(fast->activities[k].min_ns, slow.activities[k].min_ns) << k;
    EXPECT_DOUBLE_EQ(fast->activities[k].avg_ns, slow.activities[k].avg_ns) << k;
  }
  ASSERT_EQ(fast->ranks.size(), slow.ranks.size());
  for (std::size_t i = 0; i < slow.ranks.size(); ++i) {
    EXPECT_EQ(fast->ranks[i].pid, slow.ranks[i].pid);
    EXPECT_EQ(fast->ranks[i].name, slow.ranks[i].name);
    EXPECT_EQ(fast->ranks[i].total_noise_ns, slow.ranks[i].total_noise_ns);
    EXPECT_EQ(fast->ranks[i].by_category, slow.ranks[i].by_category);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace osn
