#include <gtest/gtest.h>

#include <cstdio>

#include "trace/trace_io.hpp"
#include "trace_builder.hpp"

namespace osn::trace {
namespace {

using osn::testing::TraceBuilder;

// Varint round-trips across the full value spectrum.
class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, GetParam());
  std::size_t pos = 0;
  EXPECT_EQ(get_varint(buf, pos), GetParam());
  EXPECT_EQ(pos, buf.size());
}

INSTANTIATE_TEST_SUITE_P(Values, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 129ULL,
                                           16383ULL, 16384ULL, (1ULL << 32) - 1,
                                           1ULL << 32, ~0ULL));

TEST(Varint, CompactForSmallValues) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 100);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  put_varint(buf, 1000);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(Varint, SequencesConcatenate) {
  std::vector<std::uint8_t> buf;
  for (std::uint64_t v = 0; v < 1000; v += 13) put_varint(buf, v * v);
  std::size_t pos = 0;
  for (std::uint64_t v = 0; v < 1000; v += 13) EXPECT_EQ(get_varint(buf, pos), v * v);
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, TruncatedInputDies) {
  std::vector<std::uint8_t> buf{0x80};  // continuation bit set, no next byte
  std::size_t pos = 0;
  EXPECT_DEATH(get_varint(buf, pos), "truncated");
}

TraceModel sample_trace() {
  TraceBuilder b(2);
  b.task(1, "rank0", true).task(9, "rpciod", false, true);
  b.pair(0, 100, 2'278, 1, EventType::kIrqEntry, 0);
  b.pair(0, 2'278, 4'120, 1, EventType::kSoftirqEntry, 1);
  b.ev(1, 50, 9, EventType::kSchedWakeup, 1);
  b.pair(1, 1'000'000, 1'002'913, 1, EventType::kPageFaultEntry, 0);
  return b.build(2'000'000);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const TraceModel original = sample_trace();
  const auto bytes = serialize_trace(original);
  const TraceModel restored = deserialize_trace(bytes);
  EXPECT_EQ(original, restored);
}

TEST(TraceIo, RoundTripEmptyTrace) {
  const TraceModel original = TraceBuilder(4).build(1);
  EXPECT_EQ(deserialize_trace(serialize_trace(original)), original);
}

TEST(TraceIo, DeltaEncodingIsCompact) {
  // 1000 events with small inter-arrival gaps: ~few bytes per event.
  TraceBuilder b(1);
  for (TimeNs i = 0; i < 1000; ++i)
    b.ev(0, i * 100, 1, EventType::kSchedWakeup, 1);
  const auto bytes = serialize_trace(b.build(200'000));
  EXPECT_LT(bytes.size(), 1000u * 8u);
}

TEST(TraceIo, BadMagicDies) {
  std::vector<std::uint8_t> junk{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_DEATH(deserialize_trace(junk), "magic");
}

TEST(TraceIo, TrailingBytesDie) {
  auto bytes = serialize_trace(sample_trace());
  bytes.push_back(0);
  EXPECT_DEATH(deserialize_trace(bytes), "trailing");
}

TEST(TraceIo, FileRoundTrip) {
  const TraceModel original = sample_trace();
  const std::string path = ::testing::TempDir() + "/osn_io_test.osnt";
  ASSERT_TRUE(write_trace_file(original, path));
  const TraceModel restored = read_trace_file(path);
  EXPECT_EQ(original, restored);
  std::remove(path.c_str());
}

TEST(TraceIo, UnreadableFileDies) {
  EXPECT_DEATH(read_trace_file("/nonexistent/dir/file.osnt"), "cannot open");
}

// Streaming the merged record sequence through the v2 chunked writer must
// reconstruct the exact TraceModel the v1 whole-trace path produces.
TEST(TraceIo, StreamWriterRoundTripMatchesModel) {
  const TraceModel original = sample_trace();
  const std::string path = ::testing::TempDir() + "/osn_io_stream.osnt";
  {
    OsntStreamWriter writer(path, /*chunk_records=*/4);  // force many chunks
    ASSERT_TRUE(writer.ok());
    for (const auto& rec : original.merged()) writer.append(rec);
    EXPECT_EQ(writer.records_written(), original.total_events());
    ASSERT_TRUE(writer.finish(original.meta(), original.tasks()));
    ASSERT_TRUE(writer.finish(original.meta(), original.tasks()));  // idempotent
  }
  const TraceModel restored = read_trace_file(path);
  EXPECT_EQ(restored, original);
  std::remove(path.c_str());
}

TEST(TraceIo, StreamWriterPersistsDrainStats) {
  TraceModel original = sample_trace();
  TraceMeta meta = original.meta();
  meta.drain.records = 7;
  meta.drain.batches = 3;
  meta.drain.max_batch = 4;
  meta.drain.lost = 1;
  meta.drain.overwritten = 2;
  meta.drain.producer_stalls = 5;
  const std::string path = ::testing::TempDir() + "/osn_io_drain.osnt";
  OsntStreamWriter writer(path);
  ASSERT_TRUE(writer.ok());
  for (const auto& rec : original.merged()) writer.append(rec);
  ASSERT_TRUE(writer.finish(meta, original.tasks()));
  const TraceModel restored = read_trace_file(path);
  EXPECT_EQ(restored.meta().drain, meta.drain);
  std::remove(path.c_str());
}

TEST(TraceIo, StreamWriterEmptyTrace) {
  const TraceModel original = TraceBuilder(4).build(1);
  const std::string path = ::testing::TempDir() + "/osn_io_empty.osnt";
  OsntStreamWriter writer(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.finish(original.meta(), original.tasks()));
  EXPECT_EQ(read_trace_file(path), original);
  std::remove(path.c_str());
}

TEST(TraceIo, StreamWriterRejectsNonMonotonicPerCpu) {
  const std::string path = ::testing::TempDir() + "/osn_io_mono.osnt";
  OsntStreamWriter writer(path);
  tracebuf::EventRecord a;
  a.timestamp = 100;
  a.cpu = 0;
  writer.append(a);
  tracebuf::EventRecord b = a;
  b.timestamp = 50;
  EXPECT_DEATH(writer.append(b), "not time-ordered");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace osn::trace
