#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "trace/osnt_reader.hpp"
#include "trace/trace_io.hpp"
#include "trace_builder.hpp"

namespace osn::trace {
namespace {

using osn::testing::TraceBuilder;

// Varint round-trips across the full value spectrum.
class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, GetParam());
  std::size_t pos = 0;
  EXPECT_EQ(get_varint(buf, pos), GetParam());
  EXPECT_EQ(pos, buf.size());
}

INSTANTIATE_TEST_SUITE_P(Values, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 129ULL,
                                           16383ULL, 16384ULL, (1ULL << 32) - 1,
                                           1ULL << 32, ~0ULL));

TEST(Varint, CompactForSmallValues) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 100);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  put_varint(buf, 1000);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(Varint, SequencesConcatenate) {
  std::vector<std::uint8_t> buf;
  for (std::uint64_t v = 0; v < 1000; v += 13) put_varint(buf, v * v);
  std::size_t pos = 0;
  for (std::uint64_t v = 0; v < 1000; v += 13) EXPECT_EQ(get_varint(buf, pos), v * v);
  EXPECT_EQ(pos, buf.size());
}

// Malformed input is an input condition, not a programming error: the reader
// throws a structured TraceReadError (with the byte offset) instead of
// asserting, so tools can fail cleanly.
TEST(Varint, TruncatedInputThrows) {
  std::vector<std::uint8_t> buf{0x80};  // continuation bit set, no next byte
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(buf, pos), TraceReadError);
}

TEST(Varint, OverlongEncodingThrows) {
  std::vector<std::uint8_t> buf(11, 0x80);  // 11 continuation bytes > 64 bits
  std::size_t pos = 0;
  try {
    get_varint(buf, pos);
    FAIL() << "expected TraceReadError";
  } catch (const TraceReadError& e) {
    EXPECT_NE(std::string(e.what()).find("varint"), std::string::npos);
  }
}

TraceModel sample_trace() {
  TraceBuilder b(2);
  b.task(1, "rank0", true).task(9, "rpciod", false, true);
  b.pair(0, 100, 2'278, 1, EventType::kIrqEntry, 0);
  b.pair(0, 2'278, 4'120, 1, EventType::kSoftirqEntry, 1);
  b.ev(1, 50, 9, EventType::kSchedWakeup, 1);
  b.pair(1, 1'000'000, 1'002'913, 1, EventType::kPageFaultEntry, 0);
  return b.build(2'000'000);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const TraceModel original = sample_trace();
  const auto bytes = serialize_trace(original);
  const TraceModel restored = deserialize_trace(bytes);
  EXPECT_EQ(original, restored);
}

TEST(TraceIo, RoundTripEmptyTrace) {
  const TraceModel original = TraceBuilder(4).build(1);
  EXPECT_EQ(deserialize_trace(serialize_trace(original)), original);
}

TEST(TraceIo, DeltaEncodingIsCompact) {
  // 1000 events with small inter-arrival gaps: ~few bytes per event.
  TraceBuilder b(1);
  for (TimeNs i = 0; i < 1000; ++i)
    b.ev(0, i * 100, 1, EventType::kSchedWakeup, 1);
  const auto bytes = serialize_trace(b.build(200'000));
  EXPECT_LT(bytes.size(), 1000u * 8u);
}

TEST(TraceIo, BadMagicThrows) {
  std::vector<std::uint8_t> junk{1, 2, 3, 4, 5, 6, 7, 8};
  try {
    deserialize_trace(junk);
    FAIL() << "expected TraceReadError";
  } catch (const TraceReadError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(TraceIo, TrailingBytesThrow) {
  auto bytes = serialize_trace(sample_trace());
  bytes.push_back(0);
  try {
    deserialize_trace(bytes);
    FAIL() << "expected TraceReadError";
  } catch (const TraceReadError& e) {
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const TraceModel original = sample_trace();
  const std::string path = ::testing::TempDir() + "/osn_io_test.osnt";
  ASSERT_TRUE(write_trace_file(original, path));
  const TraceModel restored = read_trace_file(path);
  EXPECT_EQ(original, restored);
  std::remove(path.c_str());
}

TEST(TraceIo, UnreadableFileThrows) {
  try {
    read_trace_file("/nonexistent/dir/file.osnt");
    FAIL() << "expected TraceReadError";
  } catch (const TraceReadError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

// Streaming the merged record sequence through the v2 chunked writer must
// reconstruct the exact TraceModel the v1 whole-trace path produces.
TEST(TraceIo, StreamWriterRoundTripMatchesModel) {
  const TraceModel original = sample_trace();
  const std::string path = ::testing::TempDir() + "/osn_io_stream.osnt";
  {
    OsntStreamWriter writer(path, /*chunk_records=*/4);  // force many chunks
    ASSERT_TRUE(writer.ok());
    for (const auto& rec : original.merged()) writer.append(rec);
    EXPECT_EQ(writer.records_written(), original.total_events());
    ASSERT_TRUE(writer.finish(original.meta(), original.tasks()));
    ASSERT_TRUE(writer.finish(original.meta(), original.tasks()));  // idempotent
  }
  const TraceModel restored = read_trace_file(path);
  EXPECT_EQ(restored, original);
  std::remove(path.c_str());
}

TEST(TraceIo, StreamWriterPersistsDrainStats) {
  TraceModel original = sample_trace();
  TraceMeta meta = original.meta();
  meta.drain.records = 7;
  meta.drain.batches = 3;
  meta.drain.max_batch = 4;
  meta.drain.lost = 1;
  meta.drain.overwritten = 2;
  meta.drain.producer_stalls = 5;
  const std::string path = ::testing::TempDir() + "/osn_io_drain.osnt";
  OsntStreamWriter writer(path);
  ASSERT_TRUE(writer.ok());
  for (const auto& rec : original.merged()) writer.append(rec);
  ASSERT_TRUE(writer.finish(meta, original.tasks()));
  const TraceModel restored = read_trace_file(path);
  EXPECT_EQ(restored.meta().drain, meta.drain);
  std::remove(path.c_str());
}

TEST(TraceIo, StreamWriterEmptyTrace) {
  const TraceModel original = TraceBuilder(4).build(1);
  const std::string path = ::testing::TempDir() + "/osn_io_empty.osnt";
  OsntStreamWriter writer(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.finish(original.meta(), original.tasks()));
  EXPECT_EQ(read_trace_file(path), original);
  std::remove(path.c_str());
}

// The default (v3) stream writer produces a chunk-indexed file: every chunk
// is in the footer index with its time range, and the indexed record count
// matches what was written.
TEST(TraceIo, StreamWriterV3WritesChunkIndex) {
  const TraceModel original = sample_trace();
  const std::string path = ::testing::TempDir() + "/osn_io_v3_index.osnt";
  {
    OsntStreamWriter writer(path, /*chunk_records=*/2);
    for (const auto& rec : original.merged()) writer.append(rec);
    ASSERT_TRUE(writer.finish(original.meta(), original.tasks()));
  }
  OsntReader reader(path);
  EXPECT_EQ(reader.version(), 3u);
  EXPECT_FALSE(reader.truncated());
  EXPECT_FALSE(reader.index_recovered());
  ASSERT_EQ(reader.chunks().size(), (original.total_events() + 1) / 2);
  EXPECT_EQ(reader.indexed_records(), original.total_events());
  TimeNs prev_last = 0;
  for (const ChunkInfo& c : reader.chunks()) {
    EXPECT_GE(c.t_first, prev_last);  // chunks slice the merged order
    EXPECT_LE(c.t_first, c.t_last);
    EXPECT_GT(c.records, 0u);
    prev_last = c.t_last;
  }
  EXPECT_EQ(reader.read_all(), original);
  std::remove(path.c_str());
}

// The v2 layout stays writable for compatibility tooling, and round-trips
// through the same reader.
TEST(TraceIo, StreamWriterV2FormatOptionRoundTrips) {
  const TraceModel original = sample_trace();
  const std::string path = ::testing::TempDir() + "/osn_io_v2_opt.osnt";
  {
    OsntStreamWriter writer(path, 4, OsntStreamWriter::Format::kV2);
    for (const auto& rec : original.merged()) writer.append(rec);
    ASSERT_TRUE(writer.finish(original.meta(), original.tasks()));
  }
  OsntReader reader(path);
  EXPECT_EQ(reader.version(), 2u);
  EXPECT_EQ(reader.read_all(), original);
  EXPECT_EQ(read_trace_file(path), original);
  std::remove(path.c_str());
}

// Regression (writer crash-consistency): a v3 writer destroyed without
// finish() — consumer daemon killed mid-run — must leave a file the reader
// opens, flags as truncated, and salvages every appended record from,
// including the partially filled final chunk.
TEST(TraceIo, StreamWriterDestructorWritesTruncationSentinel) {
  const TraceModel original = sample_trace();
  const auto merged = original.merged();
  const std::string path = ::testing::TempDir() + "/osn_io_trunc.osnt";
  {
    OsntStreamWriter writer(path, /*chunk_records=*/4);
    for (const auto& rec : merged) writer.append(rec);
    // No finish(): the destructor flushes the open chunk and writes a
    // best-effort index + "truncated" trailer.
  }
  OsntReader reader(path);
  EXPECT_EQ(reader.version(), 3u);
  EXPECT_TRUE(reader.truncated());
  EXPECT_FALSE(reader.index_recovered());
  EXPECT_EQ(reader.indexed_records(), merged.size());
  EXPECT_EQ(reader.meta().workload, "(truncated)");  // no footer to read
  EXPECT_EQ(reader.meta().n_cpus, 2u);               // recovered from cpu masks

  const TraceModel salvaged = reader.read_all();
  EXPECT_EQ(salvaged.merged(), merged);  // every record recovered
  EXPECT_TRUE(salvaged.tasks().empty());

  // verify() reports the truncation but no corruption.
  OsntReader verifier(path);
  const VerifyReport report = verifier.verify();
  EXPECT_TRUE(report.truncated);
  EXPECT_TRUE(report.intact());
  EXPECT_FALSE(report.clean());
  std::remove(path.c_str());
}

// An empty truncated file (killed before any chunk flushed) is still valid.
TEST(TraceIo, StreamWriterDestructorEmptyTruncated) {
  const std::string path = ::testing::TempDir() + "/osn_io_trunc_empty.osnt";
  { OsntStreamWriter writer(path); }
  OsntReader reader(path);
  EXPECT_TRUE(reader.truncated());
  EXPECT_EQ(reader.indexed_records(), 0u);
  EXPECT_EQ(reader.read_all().total_events(), 0u);
  std::remove(path.c_str());
}

// The reader's three I/O backends (mmap, positioned pread, in-memory buffer)
// must be observationally identical: same metadata, same records, same window
// slices, same verify verdicts. Only the access mechanism may differ.
TEST(TraceIo, MmapAndPreadBackendsAreEquivalent) {
  const TraceModel original = sample_trace();
  const std::string path = ::testing::TempDir() + "/osn_io_backends.osnt";
  {
    OsntStreamWriter writer(path, /*chunk_records=*/2);
    for (const auto& rec : original.merged()) writer.append(rec);
    ASSERT_TRUE(writer.finish(original.meta(), original.tasks()));
  }

  OsntReader mapped(path, OsntReader::IoMode::kAuto);
  OsntReader preading(path, OsntReader::IoMode::kPread);
  // kAuto maps regular files; kPread must never map.
  EXPECT_EQ(mapped.io_backend(), OsntReader::IoBackend::kMmap);
  EXPECT_EQ(preading.io_backend(), OsntReader::IoBackend::kPread);

  EXPECT_EQ(mapped.read_all(), original);
  EXPECT_EQ(preading.read_all(), original);
  EXPECT_EQ(mapped.meta(), preading.meta());
  ASSERT_EQ(mapped.chunks().size(), preading.chunks().size());

  // Window reads exercise the per-chunk view path (header reparse + CRC).
  const TimeNs mid = original.meta().end_ns / 2;
  EXPECT_EQ(mapped.read_window(0, mid), preading.read_window(0, mid));
  EXPECT_EQ(mapped.read_window(mid, original.meta().end_ns + 1),
            preading.read_window(mid, original.meta().end_ns + 1));

  EXPECT_TRUE(mapped.verify().clean());
  EXPECT_TRUE(preading.verify().clean());
  std::remove(path.c_str());
}

// Buffer-backed construction — owned bytes or a borrowed span — reports the
// kBuffer backend and reads identically to the file-backed paths.
TEST(TraceIo, BufferAndBorrowedBackendsAreEquivalent) {
  const TraceModel original = sample_trace();
  const std::string path = ::testing::TempDir() + "/osn_io_borrow.osnt";
  {
    OsntStreamWriter writer(path, /*chunk_records=*/2);
    for (const auto& rec : original.merged()) writer.append(rec);
    ASSERT_TRUE(writer.finish(original.meta(), original.tasks()));
  }
  std::vector<std::uint8_t> bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  std::remove(path.c_str());

  OsntReader borrowed(bytes.data(), bytes.size());
  EXPECT_EQ(borrowed.io_backend(), OsntReader::IoBackend::kBuffer);
  EXPECT_EQ(borrowed.read_all(), original);

  OsntReader owned(std::move(bytes));
  EXPECT_EQ(owned.io_backend(), OsntReader::IoBackend::kBuffer);
  EXPECT_EQ(owned.read_all(), original);
  EXPECT_TRUE(owned.verify().clean());
}

// ---------------------------------------------------------------------------
// Rotation correctness: the monitoring daemon's segment store seals one
// writer and opens the next mid-stream. These tests pin the writer-level
// contract that makes that safe, independent of the store itself.
// ---------------------------------------------------------------------------

// A finish()-then-reopen sequence: the stream split across consecutive
// writers yields fully sealed files (footer + index present, NOT the
// truncation sentinel) whose record concatenation is the original stream.
TEST(TraceIo, StreamWriterRotationSequenceSealsEachFile) {
  const TraceModel original = sample_trace();
  const auto merged = original.merged();
  static constexpr TimeNs kCut = 5'000;  // between the early pairs and the late one

  std::vector<std::string> paths{::testing::TempDir() + "/osn_io_rot1.osnt",
                                 ::testing::TempDir() + "/osn_io_rot2.osnt"};
  for (int seg = 0; seg < 2; ++seg) {
    OsntStreamWriter writer(paths[static_cast<std::size_t>(seg)], /*chunk_records=*/2);
    std::uint64_t prev_bytes = 0;
    for (const auto& rec : merged) {
      if ((seg == 0) != (rec.timestamp < kCut)) continue;
      writer.append(rec);
      EXPECT_GE(writer.bytes_written(), prev_bytes);  // monotonic during a segment
      prev_bytes = writer.bytes_written();
    }
    TraceMeta meta = original.meta();
    meta.start_ns = seg == 0 ? original.meta().start_ns : kCut;
    meta.end_ns = seg == 0 ? kCut : original.meta().end_ns;
    ASSERT_TRUE(writer.finish(meta, original.tasks()));
    // After finish, bytes_written() is the exact on-disk size.
    std::FILE* f = std::fopen(paths[static_cast<std::size_t>(seg)].c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    EXPECT_EQ(writer.bytes_written(), static_cast<std::uint64_t>(std::ftell(f)));
    std::fclose(f);
  }

  std::vector<tracebuf::EventRecord> rejoined;
  for (const std::string& path : paths) {
    OsntReader reader(path);
    EXPECT_EQ(reader.version(), 3u);
    EXPECT_FALSE(reader.truncated());  // sealed, not salvaged
    EXPECT_FALSE(reader.index_recovered());
    EXPECT_EQ(reader.tasks(), original.tasks());  // footer intact per segment
    EXPECT_TRUE(reader.verify().clean());
    const auto part = reader.read_all().merged();
    rejoined.insert(rejoined.end(), part.begin(), part.end());
    std::remove(path.c_str());
  }
  EXPECT_EQ(rejoined, merged);
}

// Crash mid-rotation: the previous segment was sealed and renamed into
// place, the next one died as a half-written `.part`. The sealed file must
// stay pristine and the `.part` must salvage through the truncation path.
TEST(TraceIo, StreamWriterCrashMidRotationLeavesSealedSegmentPristine) {
  const TraceModel original = sample_trace();
  const auto merged = original.merged();
  static constexpr TimeNs kCut = 5'000;
  const std::string sealed = ::testing::TempDir() + "/osn_io_crash_seg1.osnt";
  const std::string part = ::testing::TempDir() + "/osn_io_crash_seg2.osnt.part";

  std::vector<tracebuf::EventRecord> first, second;
  for (const auto& rec : merged)
    (rec.timestamp < kCut ? first : second).push_back(rec);

  {
    OsntStreamWriter writer(sealed, /*chunk_records=*/2);
    for (const auto& rec : first) writer.append(rec);
    TraceMeta meta = original.meta();
    meta.end_ns = kCut;
    ASSERT_TRUE(writer.finish(meta, original.tasks()));
  }
  {
    OsntStreamWriter writer(part, /*chunk_records=*/2);
    for (const auto& rec : second) writer.append(rec);
    // "Crash": destroyed without finish().
  }

  OsntReader ok(sealed);
  EXPECT_FALSE(ok.truncated());
  EXPECT_TRUE(ok.verify().clean());
  EXPECT_EQ(ok.read_all().merged(), first);

  OsntReader salvage(part);
  EXPECT_TRUE(salvage.truncated());
  EXPECT_EQ(salvage.read_all().merged(), second);  // every record recoverable
  EXPECT_TRUE(salvage.verify().intact());

  std::remove(sealed.c_str());
  std::remove(part.c_str());
}

/// Stub aggregator with a fixed tail: what the store's compaction uses to
/// persist a merged aggregate without replaying records.
class FixedTailAggregator final : public ChunkAggregator {
 public:
  explicit FixedTailAggregator(ChunkAggregate tail) : tail_(std::move(tail)) {}
  void on_record(const tracebuf::EventRecord&) override {}
  ChunkAggregate take_chunk() override { return {}; }
  std::optional<ChunkAggregate> take_tail(const TraceMeta&) override {
    return std::move(tail_);
  }

 private:
  ChunkAggregate tail_;
};

// A zero-record file whose whole payload is one aggregate blob — the
// compacted "summary segment" shape — round-trips: no chunks, no records,
// index_summary() present with the exact tail.
TEST(TraceIo, ZeroRecordAggregateOnlyFileRoundTrips) {
  ChunkAggregate tail;
  tail.classes.push_back({3, {2, 4'000, 3'000, 1'000}});
  tail.preempt.push_back({7, {1, 500, 500, 500}, 1, 500});
  tail.noise.push_back({7, 2, 5, 12'345});
  tail.cpu_events.push_back({0, 40});
  tail.cpu_events.push_back({1, 2});

  const TraceModel original = sample_trace();
  const std::string path = ::testing::TempDir() + "/osn_io_aggonly.osnt";
  {
    OsntStreamWriter writer(path, /*chunk_records=*/64);
    writer.set_aggregator(std::make_unique<FixedTailAggregator>(tail));
    ASSERT_TRUE(writer.finish(original.meta(), original.tasks()));
  }
  OsntReader reader(path);
  EXPECT_EQ(reader.version(), 3u);
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.indexed_records(), 0u);
  EXPECT_TRUE(reader.chunks().empty());
  EXPECT_EQ(reader.meta(), original.meta());
  ASSERT_TRUE(reader.index_summary().has_value());
  EXPECT_TRUE(reader.index_summary()->chunks.empty());
  EXPECT_EQ(reader.index_summary()->tail, tail);
  std::remove(path.c_str());
}

TEST(TraceIo, StreamWriterRejectsNonMonotonicPerCpu) {
  const std::string path = ::testing::TempDir() + "/osn_io_mono.osnt";
  OsntStreamWriter writer(path);
  tracebuf::EventRecord a;
  a.timestamp = 100;
  a.cpu = 0;
  writer.append(a);
  tracebuf::EventRecord b = a;
  b.timestamp = 50;
  EXPECT_DEATH(writer.append(b), "not time-ordered");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace osn::trace
