#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "tracebuf/channel_set.hpp"

namespace osn::tracebuf {
namespace {

EventRecord rec(TimeNs ts, std::uint16_t cpu) {
  EventRecord r;
  r.timestamp = ts;
  r.cpu = cpu;
  return r;
}

TEST(ChannelSet, RoutesByCpu) {
  ChannelSet cs(4, 16);
  cs.emit(0, rec(1, 0));
  cs.emit(3, rec(2, 3));
  EXPECT_EQ(cs.channel(0).size(), 1u);
  EXPECT_EQ(cs.channel(1).size(), 0u);
  EXPECT_EQ(cs.channel(3).size(), 1u);
}

TEST(ChannelSet, DrainPerCpuPreservesStreams) {
  ChannelSet cs(2, 16);
  cs.emit(0, rec(10, 0));
  cs.emit(0, rec(20, 0));
  cs.emit(1, rec(15, 1));
  auto streams = cs.drain_per_cpu();
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0].size(), 2u);
  EXPECT_EQ(streams[1].size(), 1u);
  EXPECT_EQ(streams[0][0].timestamp, 10u);
}

TEST(ChannelSet, MergeIsGloballyTimeOrdered) {
  ChannelSet cs(4, 1u << 8);
  // Interleaved timestamps across CPUs.
  for (TimeNs t = 0; t < 100; ++t) cs.emit(static_cast<CpuId>(t % 4), rec(t * 7 % 101, static_cast<std::uint16_t>(t % 4)));
  // Per-channel streams must be monotonic for the merge contract: rebuild
  // with monotonic per-cpu times instead.
  (void)cs.drain_per_cpu();

  ChannelSet cs2(4, 1u << 8);
  for (TimeNs t = 0; t < 100; ++t) cs2.emit(static_cast<CpuId>(t % 4), rec(t, static_cast<std::uint16_t>(t % 4)));
  auto merged = cs2.drain_merged();
  ASSERT_EQ(merged.size(), 100u);
  for (std::size_t i = 1; i < merged.size(); ++i)
    EXPECT_LE(merged[i - 1].timestamp, merged[i].timestamp);
}

TEST(ChannelSet, MergeBreaksTiesByCpu) {
  ChannelSet cs(3, 16);
  cs.emit(2, rec(5, 2));
  cs.emit(0, rec(5, 0));
  cs.emit(1, rec(5, 1));
  auto merged = cs.drain_merged();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].cpu, 0u);
  EXPECT_EQ(merged[1].cpu, 1u);
  EXPECT_EQ(merged[2].cpu, 2u);
}

TEST(ChannelSet, TotalLostAggregates) {
  ChannelSet cs(2, 2);
  for (int i = 0; i < 5; ++i) cs.emit(0, rec(static_cast<TimeNs>(i), 0));
  for (int i = 0; i < 4; ++i) cs.emit(1, rec(static_cast<TimeNs>(i), 1));
  EXPECT_EQ(cs.total_lost(), 3u + 2u);
}

TEST(ChannelSet, ZeroCpusDies) { EXPECT_DEATH(ChannelSet(0, 16), "at least one"); }

TEST(ChannelSet, EmitOutOfRangeCpuDies) {
  ChannelSet cs(4, 16);
  cs.emit(3, rec(1, 3));  // last valid cpu is fine
  EXPECT_DEATH(cs.emit(4, rec(1, 4)), "out of channel range");
  EXPECT_DEATH(cs.emit(1000, rec(1, 0)), "out of channel range");
}

// Regression for the merge tie-break contract: with equal timestamps spread
// across every channel and interleaved with distinct ones, the merged stream
// must order equal-timestamp records strictly by CPU id. The live Consumer
// replays this exact order, so this test pins the contract both rely on.
TEST(ChannelSet, MergeOrdersEqualTimestampsByCpuAcrossRuns) {
  ChannelSet cs(5, 1u << 6);
  // Each channel gets ts = 10, 10, 20, 30, 30 — monotonic per channel, with
  // heavy cross-channel ties at 10 and 30.
  for (std::uint16_t cpu = 0; cpu < 5; ++cpu)
    for (TimeNs ts : {10u, 10u, 20u, 30u, 30u}) cs.emit(cpu, rec(ts, cpu));
  auto merged = cs.drain_merged();
  ASSERT_EQ(merged.size(), 25u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const auto& a = merged[i - 1];
    const auto& b = merged[i];
    ASSERT_LE(a.timestamp, b.timestamp);
    // Equal timestamps: CPU ids must never go backwards.
    if (a.timestamp == b.timestamp) {
      ASSERT_LE(a.cpu, b.cpu);
    }
  }
  // Spot-check the head: both ts=10 records of cpu 0 precede cpu 1's.
  EXPECT_EQ(merged[0].cpu, 0u);
  EXPECT_EQ(merged[1].cpu, 0u);
  EXPECT_EQ(merged[2].cpu, 1u);
}

// Real-thread twin of the LitmusTracebuf.ThreeProducerEmitWithOverwriteReclaim
// model-checker litmus: three producers hammer their own overwrite-mode
// channels (heavy reclaim traffic, no consumer attached), which the tsan
// preset then vets for data races at native interleavings.
TEST(ChannelSetStress, ThreeProducerOverwriteReclaim) {
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 20000;
  constexpr std::size_t kCapacity = 8;
  ChannelSet cs(kProducers, kCapacity, FullPolicy::kOverwrite);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&cs, p] {
      const auto cpu = static_cast<std::uint16_t>(p);
      for (std::size_t i = 1; i <= kPerProducer; ++i)
        ASSERT_TRUE(cs.emit(cpu, rec(i, cpu)));  // overwrite never rejects
    });
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(cs.total_lost(), 0u);
  for (std::size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(cs.channel(static_cast<CpuId>(p)).overwritten(),
              kPerProducer - kCapacity);
    EXPECT_EQ(cs.channel(static_cast<CpuId>(p)).size(), kCapacity);
  }
  const auto merged = cs.drain_merged();
  ASSERT_EQ(merged.size(), kProducers * kCapacity);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const auto& a = merged[i - 1];
    const auto& b = merged[i];
    ASSERT_TRUE(a.timestamp < b.timestamp ||
                (a.timestamp == b.timestamp && a.cpu < b.cpu));
  }
  // Flight-recorder semantics: each channel retained its newest kCapacity.
  for (const auto& r : merged) EXPECT_GT(r.timestamp, kPerProducer - kCapacity);
}

}  // namespace
}  // namespace osn::tracebuf
