// End-to-end integration: workload -> trace -> analysis -> exports, plus the
// paper's headline validation (FTQ vs LTTNG-NOISE agreement) on a real
// simulated run.
#include <gtest/gtest.h>

#include "export/csv.hpp"
#include "export/paraver.hpp"
#include "noise/chart.hpp"
#include "noise/disambiguate.hpp"
#include "noise/ftq_compare.hpp"
#include "trace/trace_io.hpp"
#include "workloads/ftq.hpp"
#include "workloads/sequoia.hpp"
#include "workloads/workload.hpp"

namespace osn {
namespace {

struct FtqRun {
  workloads::FtqWorkload workload;
  workloads::RunResult result;
  FtqRun()
      : workload([] {
          workloads::FtqParams p;
          p.n_quanta = 500;
          return p;
        }()),
        result(workloads::run_workload(workload, 1)) {}
};

FtqRun& ftq_run() {
  static FtqRun run;
  return run;
}

TEST(Integration, FtqAndTraceAgree) {
  // §III-C / Fig 1: the two measurement methods see the same noise.
  auto& run = ftq_run();
  noise::NoiseAnalysis analysis(run.result.trace);
  const noise::SyntheticChart chart =
      noise::build_chart(analysis, run.workload.ftq_pid(),
                         run.workload.samples().front().start,
                         run.workload.params().quantum, run.workload.samples().size());
  const noise::FtqComparison cmp = noise::compare_ftq(
      run.workload.samples(), run.workload.nmax(), run.workload.params().op_time, chart);
  EXPECT_GT(cmp.correlation, 0.9);
  EXPECT_EQ(cmp.underestimated_quanta, 0u);
  // "In general, the result is that FTQ slightly overestimates the OS noise."
  EXPECT_GT(cmp.overestimated_quanta, cmp.underestimated_quanta);
  EXPECT_LT(cmp.mean_abs_diff_ns, 2.0 * static_cast<double>(run.workload.params().op_time));
}

TEST(Integration, TickQuantaCarryPeriodicComposition) {
  auto& run = ftq_run();
  noise::NoiseAnalysis analysis(run.result.trace);
  const noise::SyntheticChart chart =
      noise::build_chart(analysis, run.workload.ftq_pid(),
                         run.workload.samples().front().start,
                         run.workload.params().quantum, run.workload.samples().size());
  // Quanta containing a tick must show timer_interrupt + run_timer_softirq.
  std::size_t tick_quanta = 0;
  for (const auto& q : chart.quanta) {
    bool irq = false, softirq = false;
    for (const auto& c : q.components) {
      if (c.kind == noise::ActivityKind::kTimerIrq) irq = true;
      if (c.kind == noise::ActivityKind::kTimerSoftirq) softirq = true;
    }
    if (irq) {
      EXPECT_TRUE(softirq);
      ++tick_quanta;
    }
  }
  // 500 ms at 100 Hz: ~50 tick quanta.
  EXPECT_NEAR(static_cast<double>(tick_quanta), 50.0, 5.0);
}

TEST(Integration, DisambiguationFindsCompositeQuanta) {
  // Fig 9: some quanta contain a page fault *and* an unrelated tick.
  auto& run = ftq_run();
  noise::NoiseAnalysis analysis(run.result.trace);
  const noise::SyntheticChart chart =
      noise::build_chart(analysis, run.workload.ftq_pid(),
                         run.workload.samples().front().start,
                         run.workload.params().quantum, run.workload.samples().size());
  const auto interruptions = noise::group_interruptions(analysis, run.workload.ftq_pid());
  EXPECT_GT(interruptions.size(), 50u);
  const auto composites = noise::find_composite_quanta(chart, interruptions);
  EXPECT_GE(composites.size(), 1u);
}

TEST(Integration, TraceSurvivesOsntRoundTrip) {
  auto& run = ftq_run();
  const auto bytes = trace::serialize_trace(run.result.trace);
  EXPECT_EQ(trace::deserialize_trace(bytes), run.result.trace);
  // Compact: well under the 24-byte in-memory record size.
  EXPECT_LT(static_cast<double>(bytes.size()),
            16.0 * static_cast<double>(run.result.trace.total_events()));
}

TEST(Integration, ParaverExportOfRealRunIsWellFormed) {
  auto& run = ftq_run();
  noise::NoiseAnalysis analysis(run.result.trace);
  const auto files = exporter::export_paraver(analysis);
  EXPECT_EQ(files.prv.substr(0, 8), "#Paraver");
  // One line per record plus header; every noise interval contributes a
  // state and two events.
  const std::size_t lines = static_cast<std::size_t>(
      std::count(files.prv.begin(), files.prv.end(), '\n'));
  EXPECT_GT(lines, analysis.noise_intervals().size() * 2);
}

TEST(Integration, CsvExportOfRealRunParses) {
  auto& run = ftq_run();
  noise::NoiseAnalysis analysis(run.result.trace);
  const std::string csv = exporter::intervals_csv(analysis);
  const std::size_t lines = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, analysis.noise_intervals().size() + 1);
}

TEST(Integration, NestingAblationInflatesSequoiaNoise) {
  workloads::SequoiaWorkload wl(workloads::SequoiaApp::kUmt, sec(1));
  const auto run = workloads::run_workload(wl, 1);
  noise::AnalysisOptions naive;
  naive.resolve_nesting = false;
  noise::NoiseAnalysis resolved(run.trace);
  noise::NoiseAnalysis inflated(run.trace, naive);
  DurNs resolved_total = 0, inflated_total = 0;
  for (Pid pid : run.trace.app_pids()) {
    resolved_total += resolved.total_noise(pid);
    inflated_total += inflated.total_noise(pid);
  }
  EXPECT_GT(inflated_total, resolved_total);
}

TEST(Integration, RunnableFilterReducesAccountedNoise) {
  workloads::SequoiaWorkload wl(workloads::SequoiaApp::kIrs, sec(1));
  const auto run = workloads::run_workload(wl, 1);
  noise::AnalysisOptions no_filter;
  no_filter.runnable_filter = false;
  noise::NoiseAnalysis filtered(run.trace);
  noise::NoiseAnalysis unfiltered(run.trace, no_filter);
  EXPECT_LT(filtered.noise_intervals().size(), unfiltered.noise_intervals().size());
}

TEST(Integration, TracerOverheadIsSmall) {
  // §III-A: the tracer's overhead is ~0.28%. In the simulator the trace
  // sink is free by construction, so verify the *accounting* analogue: a
  // traced run and an untraced run advance identically (tracing never
  // perturbs simulated time).
  auto run_end_time = [](bool with_sink) {
    workloads::FtqParams p;
    p.n_quanta = 200;
    workloads::FtqWorkload wl(p);
    kernel::NodeConfig cfg = wl.config();
    cfg.seed = 5;
    trace::VectorSink vec;
    trace::NullSink null;
    trace::TraceSink& sink = with_sink ? static_cast<trace::TraceSink&>(vec)
                                       : static_cast<trace::TraceSink&>(null);
    kernel::Kernel k(cfg, wl.models(), sink);
    wl.setup(k);
    k.start();
    k.run_until_apps_done(sec(60));
    return k.now();
  };
  EXPECT_EQ(run_end_time(true), run_end_time(false));
}

}  // namespace
}  // namespace osn
