// Test helper: build small hand-crafted traces for analyzer unit tests.
#pragma once

#include <map>
#include <vector>

#include "trace/schema.hpp"
#include "trace/trace_model.hpp"

namespace osn::testing {

class TraceBuilder {
 public:
  explicit TraceBuilder(std::uint16_t n_cpus = 1) : per_cpu_(n_cpus) {
    meta_.n_cpus = n_cpus;
    meta_.tick_period_ns = 10 * kNsPerMs;
    meta_.workload = "test";
  }

  TraceBuilder& task(Pid pid, std::string name, bool is_app, bool is_kthread = false) {
    trace::TaskInfo info;
    info.pid = pid;
    info.name = std::move(name);
    info.is_app = is_app;
    info.is_kernel_thread = is_kthread;
    tasks_[pid] = std::move(info);
    return *this;
  }

  TraceBuilder& ev(CpuId cpu, TimeNs ts, Pid pid, trace::EventType type,
                   std::uint64_t arg = 0) {
    per_cpu_[cpu].push_back(trace::make_record(ts, cpu, pid, type, arg));
    end_ = std::max(end_, ts);
    return *this;
  }

  /// Convenience: a full entry/exit pair on one CPU.
  TraceBuilder& pair(CpuId cpu, TimeNs t0, TimeNs t1, Pid pid, trace::EventType entry,
                     std::uint64_t arg = 0) {
    ev(cpu, t0, pid, entry, arg);
    ev(cpu, t1, pid, trace::exit_of(entry), arg);
    return *this;
  }

  trace::TraceModel build(TimeNs end = 0) {
    meta_.end_ns = end != 0 ? end : end_ + 1;
    return trace::TraceModel(meta_, per_cpu_, tasks_);
  }

 private:
  trace::TraceMeta meta_;
  std::vector<std::vector<tracebuf::EventRecord>> per_cpu_;
  std::map<Pid, trace::TaskInfo> tasks_;
  TimeNs end_ = 0;
};

}  // namespace osn::testing
