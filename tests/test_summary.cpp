#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "stats/summary.hpp"

namespace osn::stats {
namespace {

TEST(StreamingSummary, EmptyIsZero) {
  StreamingSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingSummary, SingleValue) {
  StreamingSummary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingSummary, MatchesDirectComputation) {
  std::vector<double> data{4380, 250, 69398061, 2500, 4500, 1718, 620};
  StreamingSummary s;
  double sum = 0;
  for (double v : data) {
    s.add(v);
    sum += v;
  }
  const double mean = sum / static_cast<double>(data.size());
  double m2 = 0;
  for (double v : data) m2 += (v - mean) * (v - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-6 * mean);
  EXPECT_NEAR(s.variance(), m2 / static_cast<double>(data.size()),
              1e-6 * m2 / static_cast<double>(data.size()));
  EXPECT_EQ(s.min(), 250);
  EXPECT_EQ(s.max(), 69398061);
}

TEST(StreamingSummary, SumIsMeanTimesCount) {
  StreamingSummary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.sum(), 5050.0, 1e-9);
}

TEST(StreamingSummary, MergeWithEmpty) {
  StreamingSummary a, b;
  a.add(1);
  a.add(2);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
}

// Property: merging partials equals single-pass accumulation, for any split.
class SummaryMergeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SummaryMergeProperty, MergeEqualsSinglePass) {
  Xoshiro256 rng(17);
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) data.push_back(rng.uniform01() * 1e6);

  StreamingSummary whole;
  for (double v : data) whole.add(v);

  const std::size_t split = GetParam();
  StreamingSummary left, right;
  for (std::size_t i = 0; i < data.size(); ++i)
    (i < split ? left : right).add(data[i]);
  left.merge(right);

  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-6);
  EXPECT_NEAR(left.variance(), whole.variance(), whole.variance() * 1e-9 + 1e-6);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

INSTANTIATE_TEST_SUITE_P(Splits, SummaryMergeProperty,
                         ::testing::Values(0, 1, 13, 500, 999, 1000));

TEST(StreamingSummary, StddevIsSqrtVariance) {
  StreamingSummary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), std::sqrt(s.variance()), 1e-12);
}

TEST(StreamingSummary, ConstantDataZeroVariance) {
  StreamingSummary s;
  for (int i = 0; i < 100; ++i) s.add(3.14);
  EXPECT_NEAR(s.variance(), 0.0, 1e-12);
}

}  // namespace
}  // namespace osn::stats
