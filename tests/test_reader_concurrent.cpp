// Concurrent OsntReader access: many threads, one reader, one file.
//
// The query server shares one OsntReader per catalog entry across all its
// workers, so read_all / read_window / verify must be callable concurrently
// and return exactly what a single-threaded caller would get. v3 decoding is
// lock-free (pread + immutable index); the v1/v2 shim serializes internally
// — both contracts are exercised here, with results compared byte-for-byte
// via serialize_trace.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "trace/osnt_reader.hpp"
#include "trace/trace_io.hpp"
#include "trace_builder.hpp"

namespace osn::trace {
namespace {

using osn::testing::TraceBuilder;

TraceModel interesting_model() {
  TraceBuilder b(2);
  b.task(1, "rank0", true).task(2, "rank1", true).task(7, "events/0", false, true);
  for (TimeNs t = 0; t < 400; ++t) {
    b.pair(0, 1'000 + t * 5'000, 1'800 + t * 5'000, 1, EventType::kIrqEntry, 0);
    b.pair(1, 3'000 + t * 5'000, 3'600 + t * 5'000, 2, EventType::kPageFaultEntry, 0);
  }
  return b.build(ms(3));
}

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "osnt_concurrent_" + tag + "_" +
         std::to_string(::getpid()) + ".osnt";
}

void write_v3(const TraceModel& model, const std::string& path) {
  OsntStreamWriter writer(path, /*chunk_records=*/64);
  for (const auto& rec : model.merged()) writer.append(rec);
  ASSERT_TRUE(writer.finish(model.meta(), model.tasks()));
}

TEST(ReaderConcurrent, ParallelReadAllMatchesSerial) {
  const TraceModel original = interesting_model();
  const std::string path = temp_path("v3_all");
  write_v3(original, path);

  OsntReader reader(path);
  const std::vector<std::uint8_t> expected = serialize_trace(reader.read_all());

  constexpr std::size_t kThreads = 8;
  std::vector<std::vector<std::uint8_t>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i)
    threads.emplace_back([&, i] { got[i] = serialize_trace(reader.read_all()); });
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kThreads; ++i) EXPECT_EQ(got[i], expected) << "thread " << i;
  std::remove(path.c_str());
}

TEST(ReaderConcurrent, MixedWindowAndFullReads) {
  const TraceModel original = interesting_model();
  const std::string path = temp_path("v3_mixed");
  write_v3(original, path);

  OsntReader reader(path);
  const std::vector<std::uint8_t> expect_all = serialize_trace(reader.read_all());
  const std::vector<std::uint8_t> expect_win =
      serialize_trace(reader.read_window(ms(1), ms(2)));

  constexpr std::size_t kThreads = 8;
  std::vector<std::vector<std::uint8_t>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      // Even threads decode the full trace, odd threads a window; both also
      // run verify() to stress the shared index paths.
      if (i % 2 == 0) {
        got[i] = serialize_trace(reader.read_all());
      } else {
        got[i] = serialize_trace(reader.read_window(ms(1), ms(2)));
      }
      EXPECT_TRUE(reader.verify().intact());
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kThreads; ++i)
    EXPECT_EQ(got[i], i % 2 == 0 ? expect_all : expect_win) << "thread " << i;
  std::remove(path.c_str());
}

TEST(ReaderConcurrent, LegacyShimSerializesSafely) {
  // v1 files run through the whole-file compatibility shim, whose lazily
  // built model is guarded by the reader's internal mutex.
  const TraceModel original = interesting_model();
  const std::string path = temp_path("v1");
  ASSERT_TRUE(write_trace_file(original, path));

  OsntReader reader(path);
  const std::vector<std::uint8_t> expected = serialize_trace(original);

  constexpr std::size_t kThreads = 6;
  std::vector<std::vector<std::uint8_t>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      got[i] = serialize_trace(i % 2 == 0 ? reader.read_all()
                                          : reader.read_window(0, kTimeInfinity));
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kThreads; ++i) EXPECT_EQ(got[i], expected) << "thread " << i;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace osn::trace
