// common::Deadline — monotonic-clock budget arithmetic.
#include <gtest/gtest.h>

#include "common/clock.hpp"

namespace osn {
namespace {

TEST(Deadline, DefaultNeverExpires) {
  const Deadline d;
  EXPECT_TRUE(d.never_expires());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), kTimeInfinity);
  EXPECT_EQ(d, Deadline::never());
}

TEST(Deadline, AfterZeroIsAlreadyExpired) {
  const Deadline d = Deadline::after(0);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), 0u);
}

TEST(Deadline, AfterBudgetCountsDown) {
  const Deadline d = Deadline::after(sec(60));
  EXPECT_FALSE(d.expired());
  const DurNs rem = d.remaining();
  EXPECT_GT(rem, sec(59));
  EXPECT_LE(rem, sec(60));
}

TEST(Deadline, AfterSaturatesToNever) {
  // A budget that would overflow the clock saturates to "no deadline"
  // rather than wrapping around into the past.
  const Deadline d = Deadline::after(kTimeInfinity - 1);
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.never_expires());
}

TEST(Deadline, MinPicksEarlierAndNeverIsIdentity) {
  const Deadline soon = Deadline::after(ms(1));
  const Deadline late = Deadline::after(sec(60));
  EXPECT_EQ(soon.min(late), soon);
  EXPECT_EQ(late.min(soon), soon);
  EXPECT_EQ(soon.min(Deadline::never()), soon);
  EXPECT_EQ(Deadline::never().min(soon), soon);
}

TEST(Deadline, SleepRemainingWakesAtDeadline) {
  const TimeNs t0 = monotonic_now_ns();
  const Deadline d = Deadline::after(2 * kNsPerMs);
  d.sleep_remaining();
  EXPECT_TRUE(d.expired());
  EXPECT_GE(monotonic_now_ns() - t0, 2 * kNsPerMs);
}

TEST(Deadline, SleepRemainingHonorsCap) {
  const Deadline d = Deadline::after(sec(60));
  const TimeNs t0 = monotonic_now_ns();
  d.sleep_remaining(/*cap=*/kNsPerMs);
  // Slept roughly the cap, nowhere near the full budget.
  EXPECT_LT(monotonic_now_ns() - t0, sec(10));
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, SleepRemainingOnExpiredReturnsImmediately) {
  const Deadline d = Deadline::after(0);
  const TimeNs t0 = monotonic_now_ns();
  d.sleep_remaining();
  EXPECT_LT(monotonic_now_ns() - t0, sec(1));
}

TEST(Deadline, NeverUncappedIsNoOp) {
  // An uncapped sleep on never() would hang forever; it must return
  // immediately instead. (With a finite cap it sleeps the cap — that is the
  // polling building block.)
  const TimeNs t0 = monotonic_now_ns();
  Deadline::never().sleep_remaining();
  EXPECT_LT(monotonic_now_ns() - t0, sec(1));

  const TimeNs t1 = monotonic_now_ns();
  Deadline::never().sleep_remaining(/*cap=*/kNsPerMs);
  EXPECT_GE(monotonic_now_ns() - t1, kNsPerMs);
}

TEST(Deadline, MonotonicNowAdvances) {
  const TimeNs a = monotonic_now_ns();
  const TimeNs b = monotonic_now_ns();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace osn
