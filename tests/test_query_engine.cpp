// Engine equivalence properties: every (window, predicate, aggregate) plan
// over randomized v2/v3 traces must produce bytes identical to the primitive
// composition (read_all → window_of → restrict → NoiseAnalysis → exporter),
// at any worker count, over either I/O backend, hot or cold cache. These are
// the tests that allowed the duplicated serve/CLI execution paths to be
// deleted: the planner is provably the same computation.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "export/json.hpp"
#include "noise/analysis.hpp"
#include "noise/index_aggregate.hpp"
#include "query/engine.hpp"
#include "serve_helpers.hpp"
#include "trace/osnt_reader.hpp"
#include "trace/trace_io.hpp"
#include "trace_builder.hpp"

namespace osn::query {
namespace {

using serve::testing::TempDir;

/// Randomized but analyzable trace: well-formed entry/exit nesting per CPU,
/// guaranteed application ranks, event times spread over ~tens of ms so
/// windows and chunk ranges are non-trivial.
trace::TraceModel random_trace(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const auto n_cpus = static_cast<std::uint16_t>(1 + rng.bounded(4));
  osn::testing::TraceBuilder b(n_cpus);
  b.task(1, "rank0", /*is_app=*/true);
  b.task(2, "rank1", /*is_app=*/true);
  b.task(9, "events/0", /*is_app=*/false, /*is_kthread=*/true);
  static constexpr trace::EventType kEntries[] = {
      trace::EventType::kIrqEntry, trace::EventType::kSoftirqEntry,
      trace::EventType::kPageFaultEntry, trace::EventType::kSyscallEntry};
  TimeNs end = 0;
  for (CpuId cpu = 0; cpu < n_cpus; ++cpu) {
    TimeNs t = 1 + rng.bounded(1000);
    const std::size_t n_pairs = 50 + rng.bounded(150);
    for (std::size_t i = 0; i < n_pairs; ++i) {
      const trace::EventType entry = kEntries[rng.bounded(std::size(kEntries))];
      // Args must name mapped activities: IRQ vectors 0-2, softirq nrs from
      // the classified set; page fault / syscall args are free-form.
      static constexpr std::uint64_t kSoftirqNrs[] = {1, 2, 3, 9};
      const std::uint64_t arg = entry == trace::EventType::kSoftirqEntry
                                    ? kSoftirqNrs[rng.bounded(std::size(kSoftirqNrs))]
                                    : rng.bounded(3);
      const Pid pid = rng.bounded(2) == 0 ? 1 : 2;
      const DurNs width = 100 + rng.bounded(5'000);
      b.pair(cpu, t, t + width, pid, entry, arg);
      t += width + 1'000 + rng.bounded(500'000);
    }
    end = std::max(end, t);
  }
  return b.build(end + 1);
}

/// Writes `model` as a chunked v3 file with pre-aggregates (small chunks so
/// window pushdown has real ranges to select).
std::string write_v3(const trace::TraceModel& model, const TempDir& dir,
                     const std::string& name) {
  const std::string path = dir.path() + "/" + name + ".osnt";
  trace::OsntStreamWriter writer(path, /*chunk_records=*/64);
  writer.set_aggregator(std::make_unique<noise::IndexAggregator>());
  for (const auto& rec : model.merged()) writer.append(rec);
  EXPECT_TRUE(writer.finish(model.meta(), model.tasks()));
  return path;
}

std::string write_v2(const trace::TraceModel& model, const TempDir& dir,
                     const std::string& name) {
  const std::string path = dir.path() + "/" + name + ".osnt";
  trace::OsntStreamWriter writer(path, /*chunk_records=*/64,
                                 trace::OsntStreamWriter::Format::kV2);
  for (const auto& rec : model.merged()) writer.append(rec);
  EXPECT_TRUE(writer.finish(model.meta(), model.tasks()));
  return path;
}

/// The primitive composition the engine must reproduce byte-for-byte.
std::string ground_truth_summary(const trace::TraceModel& model, const Plan& plan) {
  std::optional<trace::TraceModel> local;
  const bool windowed = !(plan.t0 == 0 && plan.t1 == kTimeInfinity);
  if (windowed) local.emplace(trace::window_of(model, plan.t0, plan.t1));
  if (plan.cpu.has_value()) {
    const trace::TraceModel& in = local.has_value() ? *local : model;
    std::vector<std::vector<tracebuf::EventRecord>> per_cpu(in.cpu_count());
    if (*plan.cpu < per_cpu.size()) per_cpu[*plan.cpu] = in.cpu_events(*plan.cpu);
    local.emplace(trace::TraceModel(in.meta(), std::move(per_cpu), in.tasks()));
  }
  const noise::NoiseAnalysis analysis(local.has_value() ? *local : model, plan.options);
  return exporter::summary_json(analysis);
}

class EnginePlans : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnginePlans, WindowAndCpuPlansMatchPrimitiveCompositionOnV3) {
  TempDir dir("query_engine_v3");
  const trace::TraceModel model = random_trace(GetParam());
  const std::string path = write_v3(model, dir, "t");
  Xoshiro256 rng(GetParam() ^ 0x9E3779B97F4A7C15ull);

  ThreadPool pool(3);
  Engine engine;
  trace::OsntReader mapped(path);
  trace::OsntReader preading(path, trace::OsntReader::IoMode::kPread);
  ASSERT_GT(mapped.chunks().size(), 1u);  // pushdown must have ranges to pick

  for (int round = 0; round < 6; ++round) {
    Plan plan;
    if (round != 0) {  // round 0: full-trace summary (fast-path shape)
      const TimeNs span = model.meta().end_ns;
      const TimeNs a = rng.bounded(span);
      plan.t0 = a;
      plan.t1 = a + 1 + rng.bounded(span - a);
    }
    if (rng.bounded(2) == 0)
      plan.cpu = static_cast<CpuId>(rng.bounded(model.cpu_count() + 1u));
    const std::string expect = ground_truth_summary(model, plan);
    EXPECT_EQ(engine.run(mapped, "", plan), expect) << "serial/mmap round " << round;
    EXPECT_EQ(engine.run(mapped, "", plan, &pool), expect) << "pooled round " << round;
    EXPECT_EQ(engine.run(preading, "", plan, &pool), expect) << "pread round " << round;
  }
}

TEST_P(EnginePlans, V2PlansMatchPrimitiveComposition) {
  TempDir dir("query_engine_v2");
  const trace::TraceModel model = random_trace(GetParam());
  const std::string path = write_v2(model, dir, "t");
  trace::OsntReader reader(path);
  ASSERT_TRUE(reader.chunks().empty());  // v2 has no index: legacy model path
  Engine engine;

  Plan full;
  EXPECT_EQ(engine.run(reader, "", full), ground_truth_summary(model, full));

  Plan windowed;
  windowed.t0 = model.meta().end_ns / 4;
  windowed.t1 = model.meta().end_ns / 2;
  EXPECT_EQ(engine.run(reader, "", windowed), ground_truth_summary(model, windowed));

  Plan cpu0 = windowed;
  cpu0.cpu = 0;
  EXPECT_EQ(engine.run(reader, "", cpu0), ground_truth_summary(model, cpu0));
}

TEST_P(EnginePlans, AblationOptionsFlowThroughThePlanner) {
  TempDir dir("query_engine_ablate");
  const trace::TraceModel model = random_trace(GetParam());
  const std::string path = write_v3(model, dir, "t");
  trace::OsntReader reader(path);
  Engine engine;

  // Non-default options are ineligible for the index fast path, so this also
  // proves the record-decode fallback runs the requested ablation.
  Plan plan;
  plan.options.resolve_nesting = false;
  plan.options.runnable_filter = false;
  EXPECT_EQ(engine.run(reader, "", plan), ground_truth_summary(model, plan));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePlans, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Engine, FastPathAnswersIdenticallyToRecordDecode) {
  TempDir dir("query_fastpath");
  const trace::TraceModel model = serve::testing::make_model();
  const std::string path = write_v3(model, dir, "t");
  trace::OsntReader reader(path);

  // The fast path is index-only: it must still be byte-identical to the
  // primitive record-decode composition.
  Engine engine;
  const Plan plan;
  EXPECT_EQ(engine.run(reader, "", plan), ground_truth_summary(model, plan));
}

TEST(Engine, FullCoverWindowCanonicalizesToFullTrace) {
  TempDir dir("query_canon");
  const trace::TraceModel model = serve::testing::make_model();
  const std::string path = write_v3(model, dir, "t");
  trace::OsntReader reader(path);
  Engine engine;

  Plan covering;
  covering.t0 = 0;
  covering.t1 = model.meta().end_ns + kNsPerMs;
  const Plan canon = engine.canonicalize(reader, covering);
  EXPECT_EQ(canon.t0, 0u);
  EXPECT_EQ(canon.t1, kTimeInfinity);
  // ... so the full-cover window and the plain summary share one cache entry.
  EXPECT_EQ(fingerprint(canon), fingerprint(Plan{}));

  // A genuinely partial window stays literal.
  Plan partial;
  partial.t0 = 0;
  partial.t1 = model.meta().end_ns / 2;
  const Plan kept = engine.canonicalize(reader, partial);
  EXPECT_EQ(kept.t0, partial.t0);
  EXPECT_EQ(kept.t1, partial.t1);

  // And the cached documents agree: summary then full-cover window is one
  // result-cache entry with one hit.
  const std::string a = engine.run(reader, "stamp", Plan{});
  const std::string b = engine.run(reader, "stamp", covering);
  EXPECT_EQ(a, b);
  EXPECT_EQ(engine.result_cache_stats().insertions, 1u);
  EXPECT_EQ(engine.result_cache_stats().hits, 1u);
}

TEST(Engine, ModelCacheIsSharedAtChunkRangeGranularity) {
  TempDir dir("query_model_cache");
  const trace::TraceModel model = serve::testing::make_model();
  const std::string path = write_v3(model, dir, "t");
  trace::OsntReader reader(path);
  ASSERT_GT(reader.chunks().size(), 1u);
  Engine engine;

  // Two different windows inside one chunk's time span: one decode, reused.
  const auto& mid_chunk = reader.chunks()[reader.chunks().size() / 2];
  ASSERT_GT(mid_chunk.t_last, mid_chunk.t_first + 8);
  Plan w1;
  w1.t0 = mid_chunk.t_first + 1;
  w1.t1 = mid_chunk.t_last - 1;
  Plan w2;
  w2.t0 = mid_chunk.t_first + 2;  // different window, same chunk range
  w2.t1 = mid_chunk.t_last - 2;
  const auto [lo1, hi1] = reader.window_chunk_range(w1.t0, w1.t1);
  const auto [lo2, hi2] = reader.window_chunk_range(w2.t0, w2.t1);
  ASSERT_EQ(lo1, lo2);
  ASSERT_EQ(hi1, hi2);

  EXPECT_EQ(engine.run(reader, "stamp", w1), ground_truth_summary(model, w1));
  EXPECT_EQ(engine.run(reader, "stamp", w2), ground_truth_summary(model, w2));
  EXPECT_EQ(engine.model_cache_stats().insertions, 1u);
  EXPECT_EQ(engine.model_cache_stats().hits, 1u);
  // Distinct windows are distinct results.
  EXPECT_EQ(engine.result_cache_stats().insertions, 2u);

  // The cached model is charged its measured footprint, not a guess.
  EXPECT_GE(engine.model_cache_stats().bytes, sizeof(trace::TraceModel));
}

TEST(Engine, EmptyTraceIdDisablesCaching) {
  TempDir dir("query_nocache");
  const trace::TraceModel model = serve::testing::make_model();
  const std::string path = write_v3(model, dir, "t");
  trace::OsntReader reader(path);
  Engine engine;

  Plan windowed;  // windowed: off the fast path, so a model gets built
  windowed.t0 = 0;
  windowed.t1 = model.meta().end_ns / 2;
  engine.run(reader, "", windowed);
  engine.run(reader, "", windowed);
  EXPECT_EQ(engine.result_cache_stats().insertions, 0u);
  EXPECT_EQ(engine.result_cache_stats().hits, 0u);
  EXPECT_EQ(engine.model_cache_stats().insertions, 0u);
}

TEST(Engine, ChartTimeseriesTopkAreDeterministicAcrossBackends) {
  TempDir dir("query_aggs");
  const trace::TraceModel model = serve::testing::make_model();
  const std::string path = write_v3(model, dir, "t");
  trace::OsntReader mapped(path);
  trace::OsntReader preading(path, trace::OsntReader::IoMode::kPread);
  ThreadPool pool(3);
  Engine engine;

  for (const Aggregate agg :
       {Aggregate::kChart, Aggregate::kTimeseries, Aggregate::kTopK}) {
    Plan plan;
    plan.aggregate = agg;
    plan.quantum = 100 * kNsPerUs;
    plan.k = 3;
    const std::string serial = engine.run(mapped, "", plan);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(engine.run(mapped, "", plan, &pool), serial) << aggregate_name(agg);
    EXPECT_EQ(engine.run(preading, "", plan, &pool), serial) << aggregate_name(agg);
  }
}

TEST(Engine, RejectsUnexecutablePlans) {
  TempDir dir("query_badplans");
  const trace::TraceModel model = serve::testing::make_model();
  const std::string path = write_v3(model, dir, "t");
  trace::OsntReader reader(path);
  Engine engine;

  Plan inverted;
  inverted.t0 = 10;
  inverted.t1 = 10;
  EXPECT_THROW(engine.run(reader, "", inverted), PlanError);

  Plan zero_quantum;
  zero_quantum.aggregate = Aggregate::kChart;
  zero_quantum.quantum = 0;
  EXPECT_THROW(engine.run(reader, "", zero_quantum), PlanError);

  Plan zero_k;
  zero_k.aggregate = Aggregate::kTopK;
  zero_k.k = 0;
  EXPECT_THROW(engine.run(reader, "", zero_k), PlanError);

  Plan bad_pid;
  bad_pid.aggregate = Aggregate::kChart;
  bad_pid.task = 9999;
  try {
    engine.run(reader, "", bad_pid);
    FAIL() << "expected PlanError";
  } catch (const PlanError& e) {
    EXPECT_EQ(e.kind(), PlanError::Kind::kBadPlan);
  }
}

TEST(Engine, CheckpointSeesEveryStageAndCanAbort) {
  TempDir dir("query_checkpoint");
  const trace::TraceModel model = serve::testing::make_model();
  const std::string path = write_v3(model, dir, "t");
  trace::OsntReader reader(path);
  Engine engine;

  Plan windowed;  // off the fast path so "before analysis" fires
  windowed.t0 = 0;
  windowed.t1 = model.meta().end_ns / 2;
  std::vector<std::string> stages;
  engine.run(reader, "", windowed, nullptr,
             [&stages](const char* stage) { stages.emplace_back(stage); });
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0], "before decode");
  EXPECT_EQ(stages[1], "before analysis");
  EXPECT_EQ(stages[2], "after analysis");

  struct Abort {};
  EXPECT_THROW(engine.run(reader, "", windowed, nullptr,
                          [](const char*) { throw Abort{}; }),
               Abort);
}

TEST(Engine, TimeseriesAndTopkDocumentsHaveTheExpectedShape) {
  TempDir dir("query_shapes");
  const trace::TraceModel model = serve::testing::make_model();
  const std::string path = write_v3(model, dir, "t");
  trace::OsntReader reader(path);
  Engine engine;

  Plan ts;
  ts.aggregate = Aggregate::kTimeseries;
  ts.activity = noise::ActivityKind::kTimerIrq;
  ts.quantum = 100 * kNsPerUs;
  const std::string ts_doc = engine.run(reader, "", ts);
  EXPECT_NE(ts_doc.find("\"activity\": \"timer_interrupt\""), std::string::npos)
      << ts_doc.substr(0, 200);
  EXPECT_NE(ts_doc.find("\"quantum_ns\": 100000"), std::string::npos);

  Plan topk;
  topk.aggregate = Aggregate::kTopK;
  topk.k = 1;
  const std::string topk_doc = engine.run(reader, "", topk);
  EXPECT_NE(topk_doc.find("\"k\": 1"), std::string::npos);
  EXPECT_NE(topk_doc.find("\"cpus\": ["), std::string::npos);
}

}  // namespace
}  // namespace osn::query
