#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "stats/distributions.hpp"
#include "stats/summary.hpp"

namespace osn::stats {
namespace {

TEST(Samplers, NormalMeanZeroVarOne) {
  Xoshiro256 rng(1);
  StreamingSummary s;
  for (int i = 0; i < 200'000; ++i) s.add(sample_normal(rng));
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.variance(), 1.0, 0.02);
}

TEST(Samplers, ExponentialMeanMatches) {
  Xoshiro256 rng(2);
  StreamingSummary s;
  for (int i = 0; i < 200'000; ++i) s.add(sample_exponential(rng, 250.0));
  EXPECT_NEAR(s.mean(), 250.0, 3.0);
}

TEST(Samplers, LognormalMedianMatches) {
  Xoshiro256 rng(3);
  std::vector<double> data;
  for (int i = 0; i < 100'001; ++i) data.push_back(sample_lognormal(rng, 4'000, 0.5));
  std::nth_element(data.begin(), data.begin() + 50'000, data.end());
  EXPECT_NEAR(data[50'000], 4'000, 80);
}

TEST(Samplers, ParetoNeverBelowScale) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 10'000; ++i) ASSERT_GE(sample_pareto(rng, 100.0, 1.5), 100.0);
}

TEST(DurationModel, FixedAlwaysSameValue) {
  auto m = DurationModel::fixed(1234);
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m.sample(rng), 1234u);
}

TEST(DurationModel, ClampRespected) {
  auto m = DurationModel::lognormal(2'500, 1.5, 1'000, 5'000);
  Xoshiro256 rng(6);
  for (int i = 0; i < 50'000; ++i) {
    const DurNs v = m.sample(rng);
    ASSERT_GE(v, 1'000u);
    ASSERT_LE(v, 5'000u);
  }
}

TEST(DurationModel, DeterministicGivenSeed) {
  auto m = DurationModel::mixture({{0.5, 2'500, 0.3}, {0.5, 4'500, 0.3}}, 100, 100'000,
                                  0.01, 10'000, 1.5);
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1'000; ++i) EXPECT_EQ(m.sample(a), m.sample(b));
}

TEST(DurationModel, MixtureWeightsRespected) {
  // Well-separated modes: count samples near each.
  auto m = DurationModel::mixture({{0.8, 1'000, 0.05}, {0.2, 100'000, 0.05}}, 1,
                                  1'000'000);
  Xoshiro256 rng(8);
  int low = 0, high = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const DurNs v = m.sample(rng);
    if (v < 10'000) ++low;
    else ++high;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.8, 0.01);
  EXPECT_NEAR(static_cast<double>(high) / n, 0.2, 0.01);
}

TEST(DurationModel, TailProducesExtremes) {
  auto with_tail = DurationModel::mixture({{1.0, 1'000, 0.1}}, 1, 10'000'000, 0.05,
                                          50'000, 1.2);
  auto without = DurationModel::mixture({{1.0, 1'000, 0.1}}, 1, 10'000'000);
  Xoshiro256 r1(9), r2(9);
  DurNs max_with = 0, max_without = 0;
  for (int i = 0; i < 50'000; ++i) {
    max_with = std::max(max_with, with_tail.sample(r1));
    max_without = std::max(max_without, without.sample(r2));
  }
  EXPECT_GT(max_with, 50'000u);
  EXPECT_LT(max_without, 3'000u);
}

TEST(DurationModel, EstimateMeanCloseToAnalytic) {
  // Unclamped lognormal mean = median * exp(sigma^2/2).
  const double median = 3'000, sigma = 0.4;
  auto m = DurationModel::lognormal(median, sigma, 1, 100'000'000);
  Xoshiro256 rng(10);
  const double analytic = median * std::exp(sigma * sigma / 2);
  EXPECT_NEAR(m.estimate_mean(rng, 200'000), analytic, analytic * 0.02);
}

TEST(DurationModel, InvalidMixtureDies) {
  EXPECT_DEATH(DurationModel::mixture({}, 0, 100), "at least one");
  EXPECT_DEATH(DurationModel::mixture({{0.0, 100, 0.1}}, 0, 100), "bad component");
  EXPECT_DEATH(DurationModel::mixture({{1.0, 100, 0.1}}, 200, 100), "");
}

// Property sweep: for any (median, sigma) the sample mean respects the
// lognormal mean formula within tolerance when clamps are inactive.
class LognormalMean
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LognormalMean, MatchesFormula) {
  const auto [median, sigma] = GetParam();
  auto m = DurationModel::lognormal(median, sigma, 1, 1'000'000'000);
  Xoshiro256 rng(11);
  const double analytic = median * std::exp(sigma * sigma / 2);
  EXPECT_NEAR(m.estimate_mean(rng, 150'000), analytic, analytic * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LognormalMean,
                         ::testing::Combine(::testing::Values(500.0, 2'500.0, 65'000.0),
                                            ::testing::Values(0.1, 0.5, 1.0)));

}  // namespace
}  // namespace osn::stats
