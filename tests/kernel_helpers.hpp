// Test helpers for driving the simulated kernel with scripted tasks.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "kernel/kernel.hpp"
#include "kernel/program.hpp"
#include "trace/sink.hpp"

namespace osn::testing {

/// Replays a fixed action list, then exits.
class ScriptProgram final : public kernel::TaskProgram {
 public:
  explicit ScriptProgram(std::vector<kernel::Action> actions)
      : actions_(actions.begin(), actions.end()) {}

  kernel::Action next(kernel::Kernel&, kernel::Task&) override {
    if (actions_.empty()) return kernel::ActExit{};
    kernel::Action a = std::move(actions_.front());
    actions_.pop_front();
    return a;
  }

 private:
  std::deque<kernel::Action> actions_;
};

/// Computes `chunk` ns, `count` times, then exits.
inline std::unique_ptr<ScriptProgram> compute_program(DurNs chunk, int count) {
  std::vector<kernel::Action> actions;
  for (int i = 0; i < count; ++i) actions.push_back(kernel::ActCompute{chunk});
  return std::make_unique<ScriptProgram>(std::move(actions));
}

/// Fixed-duration activity models: deterministic kernel overheads make the
/// tests' arithmetic exact.
inline kernel::ActivityModels fixed_models(DurNs v = 1'000) {
  kernel::ActivityModels m;
  const auto f = [v](DurNs scale) { return stats::DurationModel::fixed(scale == 0 ? v : scale); };
  m.timer_irq = f(0);
  m.timer_softirq = f(0);
  m.timer_callback = f(0);
  m.schedule_fn = stats::DurationModel::fixed(200);
  m.rebalance = f(0);
  m.rcu = stats::DurationModel::fixed(100);
  m.resched_ipi = stats::DurationModel::fixed(300);
  m.pf_minor_anon = f(0);
  m.pf_cow = f(0);
  m.pf_file_minor = f(0);
  m.pf_file_major = f(0);
  m.net_irq = f(0);
  m.net_rx = f(0);
  m.net_tx = stats::DurationModel::fixed(400);
  m.nfs_wire_latency = stats::DurationModel::fixed(20'000);
  m.nfs_server_service = stats::DurationModel::fixed(50'000);
  m.rpciod_service = stats::DurationModel::fixed(2'000);
  m.events_service = stats::DurationModel::fixed(2'200);
  m.events_period = stats::DurationModel::fixed(100 * kNsPerMs);
  m.syscall_overhead = stats::DurationModel::fixed(800);
  m.context_switch = stats::DurationModel::fixed(500);
  return m;
}

struct KernelRun {
  trace::VectorSink sink;
  std::unique_ptr<kernel::Kernel> kernel;

  explicit KernelRun(kernel::NodeConfig cfg = {},
                     kernel::ActivityModels models = fixed_models()) {
    kernel = std::make_unique<kernel::Kernel>(cfg, std::move(models), sink);
  }

  trace::TraceModel finish(const std::string& name = "test") {
    trace::TraceMeta meta = kernel->finish(name);
    return kernel::build_trace_model(std::move(meta), sink.records(),
                                     kernel->task_infos());
  }
};

/// Counts records of one event type.
inline std::size_t count_events(const trace::TraceModel& model, trace::EventType type) {
  std::size_t n = 0;
  for (CpuId c = 0; c < model.cpu_count(); ++c)
    for (const auto& rec : model.cpu_events(c))
      if (static_cast<trace::EventType>(rec.event) == type) ++n;
  return n;
}

}  // namespace osn::testing
