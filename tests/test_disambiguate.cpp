#include <gtest/gtest.h>

#include "noise/disambiguate.hpp"

namespace osn::noise {
namespace {

Interruption make_interruption(TimeNs start, std::vector<std::pair<ActivityKind, DurNs>> parts) {
  Interruption in;
  in.start = start;
  TimeNs t = start;
  for (const auto& [kind, dur] : parts) {
    Interval iv;
    iv.kind = kind;
    iv.start = t;
    iv.end = t + dur;
    iv.inclusive = dur;
    iv.self = dur;
    iv.task = 1;
    in.parts.push_back(iv);
    in.total += dur;
    t += dur;
  }
  in.end = t;
  return in;
}

TEST(Disambiguate, SignatureSortsKinds) {
  const auto in = make_interruption(
      0, {{ActivityKind::kTimerSoftirq, 100}, {ActivityKind::kTimerIrq, 100}});
  const auto sig = composition_signature(in);
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_EQ(sig[0], ActivityKind::kTimerIrq);
  EXPECT_EQ(sig[1], ActivityKind::kTimerSoftirq);
}

TEST(Disambiguate, FindsThePaperFig10Pair) {
  // A 2913 ns page fault vs a 2902 ns timer irq + softirq: identical from
  // the outside, different composition.
  std::vector<Interruption> ins;
  ins.push_back(make_interruption(1'000, {{ActivityKind::kPageFault, 2'913}}));
  ins.push_back(make_interruption(
      9'000, {{ActivityKind::kTimerIrq, 2'648}, {ActivityKind::kTimerSoftirq, 254}}));
  const auto pairs = find_lookalikes(ins, 0.02);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_LT(pairs[0].relative_difference, 0.005);
  EXPECT_NE(composition_signature(pairs[0].a), composition_signature(pairs[0].b));
}

TEST(Disambiguate, SameCompositionNotReported) {
  std::vector<Interruption> ins;
  ins.push_back(make_interruption(0, {{ActivityKind::kPageFault, 2'900}}));
  ins.push_back(make_interruption(9'000, {{ActivityKind::kPageFault, 2'910}}));
  EXPECT_TRUE(find_lookalikes(ins).empty());
}

TEST(Disambiguate, DissimilarDurationsNotReported) {
  std::vector<Interruption> ins;
  ins.push_back(make_interruption(0, {{ActivityKind::kPageFault, 1'000}}));
  ins.push_back(make_interruption(9'000, {{ActivityKind::kTimerIrq, 5'000}}));
  EXPECT_TRUE(find_lookalikes(ins, 0.02).empty());
}

TEST(Disambiguate, MaxPairsRespected) {
  std::vector<Interruption> ins;
  for (int i = 0; i < 40; ++i) {
    const auto kind = i % 2 == 0 ? ActivityKind::kPageFault : ActivityKind::kTimerIrq;
    ins.push_back(make_interruption(static_cast<TimeNs>(i) * 10'000,
                                    {{kind, 2'900 + static_cast<DurNs>(i % 3)}}));
  }
  EXPECT_LE(find_lookalikes(ins, 0.05, 5).size(), 5u);
}

TEST(Disambiguate, CompositeQuantumFound) {
  // Fig 9: a page fault and a timer interrupt, separated by user time, both
  // inside one 1 ms quantum.
  SyntheticChart chart;
  chart.origin = 0;
  chart.quantum = 1'000'000;
  chart.quanta.resize(3);
  for (std::size_t i = 0; i < 3; ++i)
    chart.quanta[i].start = static_cast<TimeNs>(i) * chart.quantum;
  chart.quanta[1].total = 7'500;

  std::vector<Interruption> ins;
  ins.push_back(make_interruption(1'200'000, {{ActivityKind::kPageFault, 2'500}}));
  ins.push_back(make_interruption(1'400'000, {{ActivityKind::kTimerIrq, 2'200},
                                              {ActivityKind::kTimerSoftirq, 1'800}}));
  const auto composites = find_composite_quanta(chart, ins, 10'000);
  ASSERT_EQ(composites.size(), 1u);
  EXPECT_EQ(composites[0].quantum_index, 1u);
  EXPECT_EQ(composites[0].interruptions.size(), 2u);
}

TEST(Disambiguate, SingleInterruptionQuantumNotComposite) {
  SyntheticChart chart;
  chart.origin = 0;
  chart.quantum = 1'000'000;
  chart.quanta.resize(1);
  chart.quanta[0].start = 0;
  std::vector<Interruption> ins;
  ins.push_back(make_interruption(100'000, {{ActivityKind::kTimerIrq, 2'200}}));
  EXPECT_TRUE(find_composite_quanta(chart, ins).empty());
}

TEST(Disambiguate, BackToBackEventsNotComposite) {
  // Two interruptions closer than min_separation: one logical interruption.
  SyntheticChart chart;
  chart.origin = 0;
  chart.quantum = 1'000'000;
  chart.quanta.resize(1);
  chart.quanta[0].start = 0;
  std::vector<Interruption> ins;
  ins.push_back(make_interruption(100'000, {{ActivityKind::kTimerIrq, 2'200}}));
  ins.push_back(make_interruption(103'000, {{ActivityKind::kPageFault, 2'500}}));
  EXPECT_TRUE(find_composite_quanta(chart, ins, 10'000).empty());
}

}  // namespace
}  // namespace osn::noise
