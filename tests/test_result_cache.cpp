// ShardedLruCache: LRU semantics, byte budget, stats, concurrency.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "query/lru_cache.hpp"

namespace osn::query {
namespace {

std::shared_ptr<const std::string> val(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(ResultCache, HitAndMiss) {
  ShardedLruCache<std::string> cache(1 << 20, /*shards=*/1);
  EXPECT_EQ(cache.get("a"), nullptr);
  cache.put("a", val("A"), 1);
  const auto hit = cache.get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "A");
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ShardedLruCache<std::string> cache(/*byte_budget=*/3, /*shards=*/1);
  cache.put("a", val("A"), 1);
  cache.put("b", val("B"), 1);
  cache.put("c", val("C"), 1);
  // Touch "a" so "b" is now the LRU victim.
  EXPECT_NE(cache.get("a"), nullptr);
  cache.put("d", val("D"), 1);
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  EXPECT_NE(cache.get("d"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, ReplaceUpdatesBytes) {
  ShardedLruCache<std::string> cache(10, 1);
  cache.put("a", val("small"), 2);
  cache.put("a", val("bigger"), 5);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 5u);
  EXPECT_EQ(*cache.get("a"), "bigger");
}

TEST(ResultCache, OversizeValuesAreNotCached) {
  ShardedLruCache<std::string> cache(/*byte_budget=*/8, /*shards=*/2);  // 4 per shard
  cache.put("huge", val("x"), 100);
  EXPECT_EQ(cache.get("huge"), nullptr);
  EXPECT_EQ(cache.stats().oversize, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, PinnedValueSurvivesEviction) {
  ShardedLruCache<std::string> cache(2, 1);
  cache.put("a", val("alive"), 2);
  const auto pinned = cache.get("a");
  cache.put("b", val("B"), 2);  // evicts "a" from the cache
  EXPECT_EQ(cache.get("a"), nullptr);
  EXPECT_EQ(*pinned, "alive");  // the in-flight reader still holds it
}

TEST(ResultCache, ClearEmptiesEveryShard) {
  ShardedLruCache<std::string> cache(1 << 20, 4);
  for (int i = 0; i < 64; ++i) cache.put("k" + std::to_string(i), val("v"), 1);
  cache.clear();
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(cache.get("k0"), nullptr);
}

TEST(ResultCache, ConcurrentMixedLoad) {
  ShardedLruCache<std::string> cache(/*byte_budget=*/4096, /*shards=*/8);
  constexpr int kThreads = 8, kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 97);
        if (i % 3 == 0) {
          cache.put(key, val(key), 8);
        } else if (const auto v = cache.get(key)) {
          EXPECT_EQ(*v, key);  // values never tear or cross keys
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses + s.insertions,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(s.bytes, 4096u);
}

}  // namespace
}  // namespace osn::query
