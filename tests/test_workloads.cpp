// Workload-level behaviour: FTQ semantics, determinism, and the Sequoia
// models' paper-shape properties on short runs.
#include <gtest/gtest.h>

#include <set>

#include "noise/analysis.hpp"
#include "workloads/calibration.hpp"
#include "workloads/ftq.hpp"
#include "workloads/sequoia.hpp"
#include "workloads/workload.hpp"

namespace osn::workloads {
namespace {

FtqParams short_ftq() {
  FtqParams p;
  p.n_quanta = 300;  // 300 ms
  return p;
}

TEST(Ftq, ProducesRequestedQuanta) {
  FtqWorkload ftq(short_ftq());
  run_workload(ftq, 1);
  EXPECT_EQ(ftq.samples().size(), 300u);
}

TEST(Ftq, SamplesOnRegularGrid) {
  FtqWorkload ftq(short_ftq());
  run_workload(ftq, 1);
  const auto& samples = ftq.samples();
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_EQ(samples[i].start - samples[i - 1].start, ftq.params().quantum);
}

TEST(Ftq, NeverExceedsNmax) {
  FtqWorkload ftq(short_ftq());
  run_workload(ftq, 1);
  for (const auto& s : ftq.samples()) EXPECT_LE(s.ops, ftq.nmax());
}

TEST(Ftq, ObservesTickNoise) {
  // Every 10 ms tick steals a few us: some quanta must miss operations.
  FtqWorkload ftq(short_ftq());
  run_workload(ftq, 1);
  std::size_t noisy = 0;
  for (const auto& s : ftq.samples())
    if (s.ops < ftq.nmax()) ++noisy;
  // At least the ~30 tick quanta are noisy.
  EXPECT_GE(noisy, 25u);
}

TEST(Ftq, TraceValidates) {
  FtqWorkload ftq(short_ftq());
  const RunResult run = run_workload(ftq, 1);
  EXPECT_EQ(run.trace.validate(), "");
  EXPECT_TRUE(run.trace.is_app(ftq.ftq_pid()));
}

TEST(Ftq, DeterministicAcrossRuns) {
  FtqWorkload a(short_ftq()), b(short_ftq());
  const RunResult ra = run_workload(a, 7);
  const RunResult rb = run_workload(b, 7);
  EXPECT_EQ(ra.trace, rb.trace);
  EXPECT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); ++i)
    EXPECT_EQ(a.samples()[i].ops, b.samples()[i].ops);
}

TEST(Ftq, SeedChangesTheRun) {
  FtqWorkload a(short_ftq()), b(short_ftq());
  run_workload(a, 1);
  run_workload(b, 2);
  bool any_different = false;
  for (std::size_t i = 0; i < a.samples().size(); ++i)
    if (a.samples()[i].ops != b.samples()[i].ops) any_different = true;
  EXPECT_TRUE(any_different);
}

TEST(Ftq, PageFaultsAtConfiguredCadence) {
  FtqParams p = short_ftq();
  p.fault_period_quanta = 10;
  FtqWorkload ftq(p);
  const RunResult run = run_workload(ftq, 1);
  noise::NoiseAnalysis analysis(run.trace);
  const auto stats = analysis.activity_stats(noise::ActivityKind::kPageFault);
  // ~1 fault per 10 quanta of 1 ms over 300 ms => ~30 faults.
  EXPECT_NEAR(static_cast<double>(stats.count), 30.0, 4.0);
}

// ---------------------------------------------------------------------------
// Sequoia model properties, parameterized over the five applications.
// ---------------------------------------------------------------------------

class SequoiaShortRun : public ::testing::TestWithParam<SequoiaApp> {
 protected:
  static constexpr std::uint64_t kSeconds = 2;

  static const RunResult& run_for(SequoiaApp app) {
    static std::map<SequoiaApp, RunResult> cache = [] {
      std::map<SequoiaApp, RunResult> m;
      for (std::size_t i = 0; i < kSequoiaAppCount; ++i) {
        const auto a = static_cast<SequoiaApp>(i);
        SequoiaWorkload wl(a, sec(kSeconds));
        m.emplace(a, run_workload(wl, 1));
      }
      return m;
    }();
    return cache.at(app);
  }
};

TEST_P(SequoiaShortRun, TraceValidates) {
  EXPECT_EQ(run_for(GetParam()).trace.validate(), "");
}

TEST_P(SequoiaShortRun, AllRanksSpawnAndExit) {
  const auto& run = run_for(GetParam());
  EXPECT_EQ(run.trace.app_pids().size(), 8u);
}

TEST_P(SequoiaShortRun, TimerIrqFrequencyIsTickRate) {
  noise::NoiseAnalysis a(run_for(GetParam()).trace);
  const auto s = a.activity_stats(noise::ActivityKind::kTimerIrq);
  EXPECT_NEAR(s.freq_ev_per_sec, 100.0, 2.0);
}

TEST_P(SequoiaShortRun, TimerSoftirqFollowsEveryTick) {
  noise::NoiseAnalysis a(run_for(GetParam()).trace);
  const auto irq = a.activity_stats(noise::ActivityKind::kTimerIrq);
  const auto softirq = a.activity_stats(noise::ActivityKind::kTimerSoftirq);
  // A tick can be in flight (softirq raised but not yet run) when the last
  // rank exits and the trace closes; allow that boundary slack.
  EXPECT_NEAR(static_cast<double>(irq.count), static_cast<double>(softirq.count),
              static_cast<double>(run_for(GetParam()).trace.cpu_count()));
}

TEST_P(SequoiaShortRun, PageFaultFrequencyNearPaper) {
  noise::NoiseAnalysis a(run_for(GetParam()).trace);
  const auto s = a.activity_stats(noise::ActivityKind::kPageFault);
  const double paper = paper_data(GetParam()).page_fault.freq;
  EXPECT_NEAR(s.freq_ev_per_sec, paper, paper * 0.30 + 6.0);
}

TEST_P(SequoiaShortRun, PageFaultAvgNearPaper) {
  noise::NoiseAnalysis a(run_for(GetParam()).trace);
  const auto s = a.activity_stats(noise::ActivityKind::kPageFault);
  const double paper = paper_data(GetParam()).page_fault.avg_ns;
  EXPECT_NEAR(s.avg_ns, paper, paper * 0.25);
}

TEST_P(SequoiaShortRun, NetTxFasterAndTighterThanRx) {
  // Table IV vs III: the asynchronous DMA kick beats the synchronous copy.
  noise::NoiseAnalysis a(run_for(GetParam()).trace);
  const auto tx = a.activity_stats(noise::ActivityKind::kNetTxTasklet);
  const auto rx = a.activity_stats(noise::ActivityKind::kNetRxTasklet);
  ASSERT_GT(tx.count, 0u);
  ASSERT_GT(rx.count, 0u);
  EXPECT_LT(tx.avg_ns, rx.avg_ns);
  EXPECT_LT(tx.max_ns, rx.max_ns);
}

TEST_P(SequoiaShortRun, DominantCategoryMatchesPaper) {
  noise::NoiseAnalysis a(run_for(GetParam()).trace);
  const auto bd = a.category_breakdown_all();
  const auto& paper = paper_data(GetParam());
  // Which category does the paper say dominates?
  const std::size_t expect_dominant =
      paper.pct_page_fault > paper.pct_preemption
          ? (paper.pct_page_fault > paper.pct_periodic
                 ? static_cast<std::size_t>(noise::NoiseCategory::kPageFault)
                 : static_cast<std::size_t>(noise::NoiseCategory::kPeriodic))
          : (paper.pct_preemption > paper.pct_periodic
                 ? static_cast<std::size_t>(noise::NoiseCategory::kPreemption)
                 : static_cast<std::size_t>(noise::NoiseCategory::kPeriodic));
  std::size_t measured_dominant = 0;
  for (std::size_t c = 1; c < bd.size(); ++c) {
    if (c == static_cast<std::size_t>(noise::NoiseCategory::kRequestedService)) continue;
    if (bd[c] > bd[measured_dominant]) measured_dominant = c;
  }
  EXPECT_EQ(measured_dominant, expect_dominant);
}

TEST_P(SequoiaShortRun, RanksExperienceBarriersExceptSphot) {
  const auto& run = run_for(GetParam());
  noise::NoiseAnalysis a(run.trace);
  const bool has_comm = !a.intervals().comm.empty();
  if (GetParam() == SequoiaApp::kSphot) {
    EXPECT_FALSE(has_comm);
  } else {
    EXPECT_TRUE(has_comm);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, SequoiaShortRun,
                         ::testing::Values(SequoiaApp::kAmg, SequoiaApp::kIrs,
                                           SequoiaApp::kLammps, SequoiaApp::kSphot,
                                           SequoiaApp::kUmt),
                         [](const ::testing::TestParamInfo<SequoiaApp>& pinfo) {
                           return app_name(pinfo.param);
                         });

TEST(SequoiaProfiles, LammpsFaultsClusterAtEdges) {
  SequoiaWorkload wl(SequoiaApp::kLammps, sec(2));
  const RunResult run = run_workload(wl, 1);
  noise::NoiseAnalysis a(run.trace);
  const TimeNs dur = run.trace.duration();
  std::size_t early = 0, middle = 0, late = 0;
  for (const auto& iv : a.intervals().kernel) {
    if (iv.kind != noise::ActivityKind::kPageFault) continue;
    const double f = static_cast<double>(iv.start) / static_cast<double>(dur);
    if (f < 0.25) ++early;
    else if (f > 0.75) ++late;
    else ++middle;
  }
  // Fig 5b: init + end clusters dominate the middle.
  EXPECT_GT(early, middle);
  EXPECT_GT(late, middle / 2);
}

TEST(SequoiaProfiles, AmgFaultsSpreadThroughout) {
  SequoiaWorkload wl(SequoiaApp::kAmg, sec(2));
  const RunResult run = run_workload(wl, 1);
  noise::NoiseAnalysis a(run.trace);
  const TimeNs dur = run.trace.duration();
  std::array<std::size_t, 4> quarters{};
  for (const auto& iv : a.intervals().kernel) {
    if (iv.kind != noise::ActivityKind::kPageFault) continue;
    const auto q = std::min<std::size_t>(
        3, static_cast<std::size_t>(4 * iv.start / std::max<TimeNs>(dur, 1)));
    ++quarters[q];
  }
  // Fig 5a: every quarter of the run faults substantially.
  for (const std::size_t count : quarters) EXPECT_GT(count, 200u);
}

TEST(SequoiaProfiles, UmtSpawnsPythonHelpers) {
  SequoiaWorkload wl(SequoiaApp::kUmt, sec(1));
  const RunResult run = run_workload(wl, 1);
  std::size_t helpers = 0;
  for (const auto& [pid, info] : run.trace.tasks())
    if (info.name.starts_with("python")) ++helpers;
  EXPECT_EQ(helpers, 4u);
}

TEST(SequoiaProfiles, StatisticsStableAcrossSeeds) {
  // The calibrated frequencies are properties of the model, not of one lucky
  // seed: three independent runs must agree on the page-fault rate.
  std::vector<double> freqs;
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    SequoiaWorkload wl(SequoiaApp::kAmg, sec(1));
    const RunResult run = run_workload(wl, seed);
    noise::NoiseAnalysis a(run.trace);
    freqs.push_back(
        a.activity_stats(noise::ActivityKind::kPageFault).freq_ev_per_sec);
  }
  const double mean = (freqs[0] + freqs[1] + freqs[2]) / 3.0;
  for (const double f : freqs) EXPECT_NEAR(f, mean, mean * 0.08);
}

TEST(SequoiaProfiles, SacrificialCoreKnobsWork) {
  // Ranks offset to CPUs 1..7 with NIC irqs pinned to CPU 0: no rank ever
  // takes a net interrupt in its own context.
  SequoiaWorkload wl(SequoiaApp::kSphot, sec(1), 7, /*first_cpu=*/1);
  wl.set_pin_net_irqs(true);
  const RunResult run = run_workload(wl, 1);
  noise::NoiseAnalysis a(run.trace);
  for (const auto& iv : a.noise_intervals()) {
    EXPECT_NE(iv.kind, noise::ActivityKind::kNetIrq);
    EXPECT_NE(iv.kind, noise::ActivityKind::kNetRxTasklet);
  }
}

TEST(SequoiaProfiles, DeterministicRun) {
  SequoiaWorkload a(SequoiaApp::kSphot, sec(1));
  SequoiaWorkload b(SequoiaApp::kSphot, sec(1));
  EXPECT_EQ(run_workload(a, 3).trace, run_workload(b, 3).trace);
}

}  // namespace
}  // namespace osn::workloads
