#include <gtest/gtest.h>

#include "export/json.hpp"
#include "trace_builder.hpp"

namespace osn::exporter {
namespace {

using osn::testing::TraceBuilder;
using trace::EventType;

TEST(JsonEscape, PassesPlainText) { EXPECT_EQ(json_escape("abc 123"), "abc 123"); }

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonEscape, EscapesAllControlCharacters) {
  // RFC 8259: every code point below 0x20 must be escaped — the short forms
  // where they exist, \u00xx otherwise.
  EXPECT_EQ(json_escape("a\bb"), "a\\bb");
  EXPECT_EQ(json_escape("a\fb"), "a\\fb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape(std::string(1, '\x00')), "\\u0000");
  EXPECT_EQ(json_escape("\x1f"), "\\u001f");
  // DEL (0x7f) is not a JSON control character; it passes through.
  EXPECT_EQ(json_escape("\x7f"), "\x7f");
}

TEST(JsonEscape, WellFormedUtf8PassesVerbatim) {
  EXPECT_EQ(json_escape("caf\xC3\xA9"), "caf\xC3\xA9");            // 2-byte é
  EXPECT_EQ(json_escape("\xE2\x82\xAC"), "\xE2\x82\xAC");          // 3-byte €
  EXPECT_EQ(json_escape("\xF0\x9F\x98\x80"), "\xF0\x9F\x98\x80");  // 4-byte emoji
}

TEST(JsonEscape, IllFormedBytesAreEscaped) {
  // A hostile task name must never produce an invalid JSON document: every
  // ill-formed byte is escaped individually as \u00xx.
  EXPECT_EQ(json_escape("\xFF"), "\\u00ff");              // never valid in UTF-8
  EXPECT_EQ(json_escape("\xC3 x"), "\\u00c3 x");          // truncated 2-byte seq
  EXPECT_EQ(json_escape("\xC0\xAF"), "\\u00c0\\u00af");   // overlong encoding
  EXPECT_EQ(json_escape("\xE0\x80\x80"), "\\u00e0\\u0080\\u0080");  // overlong
  EXPECT_EQ(json_escape("\xED\xA0\x80"), "\\u00ed\\u00a0\\u0080");  // surrogate
  EXPECT_EQ(json_escape("\xF5\x80\x80\x80"),
            "\\u00f5\\u0080\\u0080\\u0080");  // > U+10FFFF
  // A valid sequence right after an invalid byte still passes through.
  EXPECT_EQ(json_escape("\x80\xC3\xA9"), "\\u0080\xC3\xA9");
}

TEST(SummaryJson, ContainsMetadataAndActivities) {
  TraceBuilder b(2);
  b.task(1, "rank0", true).task(9, "rpciod", false, true);
  b.pair(0, 100, 2'278, 1, EventType::kIrqEntry, 0);
  b.pair(0, 5'000, 7'913, 1, EventType::kPageFaultEntry, 0);
  const auto model = b.build(kNsPerSec);
  noise::NoiseAnalysis analysis(model);
  const std::string json = summary_json(analysis);

  EXPECT_NE(json.find("\"workload\": \"test\""), std::string::npos);
  EXPECT_NE(json.find("\"duration_ns\": 1000000000"), std::string::npos);
  EXPECT_NE(json.find("\"cpus\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"timer_interrupt\""), std::string::npos);
  EXPECT_NE(json.find("\"page_fault\""), std::string::npos);
  EXPECT_NE(json.find("\"max_ns\": 2913"), std::string::npos);
  EXPECT_NE(json.find("\"rank0\""), std::string::npos);
  // Total noise of rank0: 2178 + 2913.
  EXPECT_NE(json.find("\"total_noise_ns\": 5091"), std::string::npos);
}

TEST(SummaryJson, BalancedBracesAndQuotes) {
  TraceBuilder b(1);
  b.task(1, "app", true);
  b.pair(0, 10, 20, 1, EventType::kIrqEntry, 0);
  const auto model = b.build(1'000);
  noise::NoiseAnalysis analysis(model);
  const std::string json = summary_json(analysis);
  long depth = 0;
  std::size_t quotes = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
      ++quotes;
    }
    if (in_string) continue;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0u);
  EXPECT_FALSE(in_string);
}

TEST(SummaryJson, EmptyAnalysisStillValidShape) {
  const auto model = TraceBuilder(1).task(1, "app", true).build(100);
  noise::NoiseAnalysis analysis(model);
  const std::string json = summary_json(analysis);
  EXPECT_NE(json.find("\"noise_intervals\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"activities\": {"), std::string::npos);
}

}  // namespace
}  // namespace osn::exporter
