#include <gtest/gtest.h>

#include "export/json.hpp"
#include "trace_builder.hpp"

namespace osn::exporter {
namespace {

using osn::testing::TraceBuilder;
using trace::EventType;

TEST(JsonEscape, PassesPlainText) { EXPECT_EQ(json_escape("abc 123"), "abc 123"); }

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(SummaryJson, ContainsMetadataAndActivities) {
  TraceBuilder b(2);
  b.task(1, "rank0", true).task(9, "rpciod", false, true);
  b.pair(0, 100, 2'278, 1, EventType::kIrqEntry, 0);
  b.pair(0, 5'000, 7'913, 1, EventType::kPageFaultEntry, 0);
  const auto model = b.build(kNsPerSec);
  noise::NoiseAnalysis analysis(model);
  const std::string json = summary_json(analysis);

  EXPECT_NE(json.find("\"workload\": \"test\""), std::string::npos);
  EXPECT_NE(json.find("\"duration_ns\": 1000000000"), std::string::npos);
  EXPECT_NE(json.find("\"cpus\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"timer_interrupt\""), std::string::npos);
  EXPECT_NE(json.find("\"page_fault\""), std::string::npos);
  EXPECT_NE(json.find("\"max_ns\": 2913"), std::string::npos);
  EXPECT_NE(json.find("\"rank0\""), std::string::npos);
  // Total noise of rank0: 2178 + 2913.
  EXPECT_NE(json.find("\"total_noise_ns\": 5091"), std::string::npos);
}

TEST(SummaryJson, BalancedBracesAndQuotes) {
  TraceBuilder b(1);
  b.task(1, "app", true);
  b.pair(0, 10, 20, 1, EventType::kIrqEntry, 0);
  const auto model = b.build(1'000);
  noise::NoiseAnalysis analysis(model);
  const std::string json = summary_json(analysis);
  long depth = 0;
  std::size_t quotes = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
      ++quotes;
    }
    if (in_string) continue;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0u);
  EXPECT_FALSE(in_string);
}

TEST(SummaryJson, EmptyAnalysisStillValidShape) {
  const auto model = TraceBuilder(1).task(1, "app", true).build(100);
  noise::NoiseAnalysis analysis(model);
  const std::string json = summary_json(analysis);
  EXPECT_NE(json.find("\"noise_intervals\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"activities\": {"), std::string::npos);
}

}  // namespace
}  // namespace osn::exporter
