#include <gtest/gtest.h>

#include "trace/trace_model.hpp"
#include "trace_builder.hpp"

namespace osn::trace {
namespace {

using osn::testing::TraceBuilder;

TEST(TraceModel, TaskLookups) {
  auto model = TraceBuilder(1)
                   .task(1, "rank0", true)
                   .task(9, "rpciod", false, true)
                   .build(100);
  EXPECT_TRUE(model.is_app(1));
  EXPECT_FALSE(model.is_app(9));
  EXPECT_FALSE(model.is_app(77));
  EXPECT_EQ(model.task_name(1), "rank0");
  EXPECT_EQ(model.task_name(kIdlePid), "idle");
  EXPECT_EQ(model.task_name(77), "pid-77");
  ASSERT_NE(model.find_task(9), nullptr);
  EXPECT_TRUE(model.find_task(9)->is_kernel_thread);
}

TEST(TraceModel, AppPidsSorted) {
  auto model = TraceBuilder(1)
                   .task(5, "b", true)
                   .task(2, "a", true)
                   .task(9, "d", false)
                   .build(100);
  EXPECT_EQ(model.app_pids(), (std::vector<Pid>{2, 5}));
}

TEST(TraceModel, TotalAndPerCpuEvents) {
  auto model = TraceBuilder(2)
                   .ev(0, 1, 1, EventType::kSchedWakeup, 2)
                   .ev(0, 2, 1, EventType::kSchedWakeup, 2)
                   .ev(1, 3, 1, EventType::kSchedWakeup, 2)
                   .build(100);
  EXPECT_EQ(model.total_events(), 3u);
  EXPECT_EQ(model.cpu_events(0).size(), 2u);
  EXPECT_EQ(model.cpu_events(1).size(), 1u);
}

TEST(TraceModel, MergedIsTimeOrderedAcrossCpus) {
  auto model = TraceBuilder(2)
                   .ev(0, 10, 1, EventType::kSchedWakeup)
                   .ev(0, 30, 1, EventType::kSchedWakeup)
                   .ev(1, 20, 1, EventType::kSchedWakeup)
                   .build(100);
  auto merged = model.merged();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].timestamp, 10u);
  EXPECT_EQ(merged[1].timestamp, 20u);
  EXPECT_EQ(merged[2].timestamp, 30u);
}

TEST(TraceModel, ValidateAcceptsWellFormed) {
  auto model = TraceBuilder(1)
                   .pair(0, 10, 20, 1, EventType::kIrqEntry, 0)
                   .pair(0, 30, 40, 1, EventType::kSoftirqEntry, 1)
                   .build(100);
  EXPECT_EQ(model.validate(), "");
}

TEST(TraceModel, ValidateAcceptsProperNesting) {
  TraceBuilder b(1);
  b.ev(0, 10, 1, EventType::kSoftirqEntry, 1);
  b.ev(0, 12, 1, EventType::kIrqEntry, 0);  // irq nests inside softirq
  b.ev(0, 14, 1, EventType::kIrqExit, 0);
  b.ev(0, 20, 1, EventType::kSoftirqExit, 1);
  EXPECT_EQ(b.build(100).validate(), "");
}

TEST(TraceModel, ValidateCatchesTimestampRegression) {
  auto model = TraceBuilder(1)
                   .ev(0, 20, 1, EventType::kSchedWakeup)
                   .ev(0, 10, 1, EventType::kSchedWakeup)
                   .build(100);
  EXPECT_NE(model.validate().find("regression"), std::string::npos);
}

TEST(TraceModel, ValidateCatchesExitWithoutEntry) {
  auto model = TraceBuilder(1).ev(0, 10, 1, EventType::kIrqExit, 0).build(100);
  EXPECT_NE(model.validate().find("exit without entry"), std::string::npos);
}

TEST(TraceModel, ValidateCatchesMismatchedExit) {
  auto model = TraceBuilder(1)
                   .ev(0, 10, 1, EventType::kIrqEntry, 0)
                   .ev(0, 20, 1, EventType::kSoftirqExit, 1)
                   .build(100);
  EXPECT_NE(model.validate().find("mismatched"), std::string::npos);
}

TEST(TraceModel, ValidateCatchesUnclosedEntry) {
  auto model = TraceBuilder(1).ev(0, 10, 1, EventType::kIrqEntry, 0).build(100);
  EXPECT_NE(model.validate().find("unclosed"), std::string::npos);
}

TEST(TraceModel, DurationFromMeta) {
  auto model = TraceBuilder(1).build(12345);
  EXPECT_EQ(model.duration(), 12345u);
}

}  // namespace
}  // namespace osn::trace
