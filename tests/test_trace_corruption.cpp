// Corruption battery: bit-flips and truncations at randomized offsets over
// every OSNT layout must produce a clean, structured TraceReadError (or a
// successful salvage) — never a crash, abort, or sanitizer finding. This is
// the robustness contract of a trace store: cold archives rot and consumer
// daemons get killed, and the analysis tooling has to fail with a byte
// offset, not a core dump.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "trace/osnt_layout.hpp"
#include "trace/osnt_reader.hpp"
#include "trace/trace_io.hpp"
#include "trace_builder.hpp"

namespace osn::trace {
namespace {

using osn::testing::TraceBuilder;

TraceModel sample_trace() {
  TraceBuilder b(4);
  b.task(1, "rank0", true).task(2, "rank1", true).task(9, "rpciod", false, true);
  TimeNs t = 50;
  for (std::uint64_t i = 0; i < 120; ++i) {
    const CpuId cpu = static_cast<CpuId>(i % 4);
    b.pair(cpu, t, t + 400, static_cast<Pid>(1 + i % 2), EventType::kIrqEntry, 0);
    b.ev(cpu, t + 500, 9, EventType::kSchedWakeup, 1);
    t += 1000 + 13 * i;
  }
  return b.build(t + 1000);
}

/// Serializes `model` through the v3 stream writer and returns the file's
/// bytes (small chunks so the battery hits many chunk boundaries).
std::vector<std::uint8_t> v3_bytes(const TraceModel& model, std::size_t chunk_records = 16,
                                   bool finish = true) {
  const std::string path = ::testing::TempDir() + "/osn_corrupt_tmp.osnt";
  {
    OsntStreamWriter writer(path, chunk_records);
    for (const auto& rec : model.merged()) writer.append(rec);
    if (finish) {
      EXPECT_TRUE(writer.finish(model.meta(), model.tasks()));
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  std::remove(path.c_str());
  return bytes;
}

/// The battery's pass criterion: opening/reading/verifying the buffer either
/// succeeds or throws TraceReadError — anything else (abort, other exception,
/// sanitizer finding) fails the test.
void expect_clean_failure_or_success(std::vector<std::uint8_t> bytes) {
  try {
    OsntReader reader(std::move(bytes));
    (void)reader.verify();    // never throws for in-file corruption
    (void)reader.read_all();  // may throw TraceReadError
  } catch (const TraceReadError&) {
    // Structured failure with a byte offset: exactly what corrupt input owes.
  }
}

TEST(TraceCorruption, RandomBitFlipsNeverCrashV3) {
  const auto pristine = v3_bytes(sample_trace());
  Xoshiro256 rng(2026);
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = pristine;
    const std::size_t pos = static_cast<std::size_t>(rng.bounded(bytes.size()));
    bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
    expect_clean_failure_or_success(std::move(bytes));
  }
}

TEST(TraceCorruption, RandomMultiByteGarbageNeverCrashV3) {
  const auto pristine = v3_bytes(sample_trace());
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 150; ++trial) {
    auto bytes = pristine;
    const std::size_t n = 1 + static_cast<std::size_t>(rng.bounded(16));
    for (std::size_t i = 0; i < n; ++i)
      bytes[static_cast<std::size_t>(rng.bounded(bytes.size()))] =
          static_cast<std::uint8_t>(rng.next());
    expect_clean_failure_or_success(std::move(bytes));
  }
}

TEST(TraceCorruption, EveryTruncationPointNeverCrashV3) {
  const auto pristine = v3_bytes(sample_trace());
  for (std::size_t len = 0; len < pristine.size(); ++len) {
    std::vector<std::uint8_t> prefix(pristine.begin(),
                                     pristine.begin() + static_cast<std::ptrdiff_t>(len));
    expect_clean_failure_or_success(std::move(prefix));
  }
}

TEST(TraceCorruption, RandomBitFlipsNeverCrashV1) {
  const auto pristine = serialize_trace(sample_trace());
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    auto bytes = pristine;
    bytes[static_cast<std::size_t>(rng.bounded(bytes.size()))] ^=
        static_cast<std::uint8_t>(1u << rng.bounded(8));
    try {
      (void)deserialize_trace(bytes);
    } catch (const TraceReadError&) {
    }
  }
}

// A flipped payload bit is caught by the chunk CRC: verify() pins the damage
// to the chunk, read_all refuses with the chunk id, and every *other* chunk
// is still decodable.
TEST(TraceCorruption, PayloadBitFlipIsDetectedAndLocalized) {
  const TraceModel original = sample_trace();
  auto bytes = v3_bytes(original);

  std::size_t target_payload = 0;
  std::size_t damaged_chunk = 0;
  {
    OsntReader clean(bytes);
    ASSERT_GT(clean.chunks().size(), 2u);
    damaged_chunk = clean.chunks().size() / 2;
    const ChunkInfo& c = clean.chunks()[damaged_chunk];
    std::size_t pos = static_cast<std::size_t>(c.offset);
    (void)get_varint(bytes.data(), bytes.size(), pos);  // record count
    (void)get_varint(bytes.data(), bytes.size(), pos);  // payload length
    target_payload = pos + static_cast<std::size_t>(c.payload_len) / 2;
  }
  bytes[target_payload] ^= 0x10;

  OsntReader reader(bytes);
  const VerifyReport report = reader.verify();
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].chunk, static_cast<std::int64_t>(damaged_chunk));
  EXPECT_NE(report.issues[0].problem.find("CRC"), std::string::npos);

  try {
    (void)reader.read_all();
    FAIL() << "expected TraceReadError";
  } catch (const TraceReadError& e) {
    EXPECT_EQ(e.chunk_id(), static_cast<std::int64_t>(damaged_chunk));
  }
}

// A damaged trailer (torn tail write) forfeits the index but not the data:
// the reader rebuilds the index by a forward scan and recovers everything.
TEST(TraceCorruption, DamagedTrailerRecoversByScan) {
  const TraceModel original = sample_trace();
  auto bytes = v3_bytes(original);
  bytes[bytes.size() - 1] ^= 0xff;  // trailer magic

  OsntReader reader(bytes);
  EXPECT_TRUE(reader.index_recovered());
  EXPECT_EQ(reader.indexed_records(), original.total_events());
  EXPECT_EQ(reader.read_all(), original);
}

// Damage inside the footer index (CRC-protected) likewise falls back to the
// scan instead of trusting a rotten index.
TEST(TraceCorruption, DamagedIndexRecoversByScan) {
  const TraceModel original = sample_trace();
  auto bytes = v3_bytes(original);
  bytes[bytes.size() - osnt::kTrailerSize - 6] ^= 0x01;  // inside index/CRC

  OsntReader reader(bytes);
  EXPECT_TRUE(reader.index_recovered());
  EXPECT_EQ(reader.read_all(), original);
}

// Truncation that cuts into a chunk body salvages every chunk before it.
TEST(TraceCorruption, MidChunkTruncationSalvagesPrefix) {
  const TraceModel original = sample_trace();
  const auto pristine = v3_bytes(original);
  std::uint64_t third_chunk_mid = 0;
  std::size_t intact_chunks = 0;
  std::uint64_t intact_records = 0;
  {
    OsntReader clean(pristine);
    ASSERT_GT(clean.chunks().size(), 3u);
    const ChunkInfo& c = clean.chunks()[3];
    third_chunk_mid = c.offset + c.payload_len / 2;
    intact_chunks = 3;
    for (std::size_t i = 0; i < 3; ++i) intact_records += clean.chunks()[i].records;
  }
  std::vector<std::uint8_t> cut(pristine.begin(),
                                pristine.begin() + static_cast<std::ptrdiff_t>(third_chunk_mid));

  OsntReader reader(std::move(cut));
  EXPECT_TRUE(reader.truncated());
  EXPECT_TRUE(reader.index_recovered());
  EXPECT_EQ(reader.chunks().size(), intact_chunks);
  EXPECT_EQ(reader.indexed_records(), intact_records);
  const TraceModel salvaged = reader.read_all();
  EXPECT_EQ(salvaged.total_events(), intact_records);

  const VerifyReport report = reader.verify();
  EXPECT_TRUE(report.truncated);
  EXPECT_FALSE(report.issues.empty());  // the torn chunk is reported
}

/// Overwrites the leading bytes of chunk 0's payload with `patch` and re-seals
/// the chunk CRC, so the damage reaches the record decoder instead of being
/// rejected at the integrity layer. Payload length is unchanged: the bytes the
/// patch consumes simply shift how the rest of the (now nonsense) payload
/// parses, which is exactly the hostile-input shape a fuzzer produces.
void forge_chunk0_payload(std::vector<std::uint8_t>& bytes,
                          const std::vector<std::uint8_t>& patch) {
  std::size_t payload_off = 0;
  std::size_t payload_len = 0;
  {
    OsntReader clean(bytes);
    ASSERT_FALSE(clean.chunks().empty());
    const ChunkInfo& c = clean.chunks()[0];
    std::size_t pos = static_cast<std::size_t>(c.offset);
    (void)get_varint(bytes.data(), bytes.size(), pos);  // record count
    (void)get_varint(bytes.data(), bytes.size(), pos);  // payload length
    payload_off = pos;
    payload_len = static_cast<std::size_t>(c.payload_len);
  }
  ASSERT_LE(patch.size(), payload_len);
  std::copy(patch.begin(), patch.end(),
            bytes.begin() + static_cast<std::ptrdiff_t>(payload_off));
  const std::uint32_t crc = crc32(bytes.data() + payload_off, payload_len);
  std::size_t cpos = payload_off + payload_len;
  for (int i = 0; i < 4; ++i)
    bytes[cpos + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
}

// A record whose cpu varint decodes to 2^32 must be refused with a structured
// error BEFORE any per-cpu state is sized from it. The old decoder resized
// per-cpu vectors straight from the varint, so this exact input attempted a
// multi-GiB allocation; the bound check makes it fail in O(1) memory.
TEST(TraceCorruption, HostileCpuVarintFailsBounded) {
  auto bytes = v3_bytes(sample_trace());
  // varint(2^32): four continuation bytes of zero payload, then bit 32.
  forge_chunk0_payload(bytes, {0x80, 0x80, 0x80, 0x80, 0x10});

  OsntReader reader(std::move(bytes));
  try {
    (void)reader.read_all();
    FAIL() << "expected TraceReadError";
  } catch (const TraceReadError& e) {
    EXPECT_EQ(e.chunk_id(), 0);
    EXPECT_NE(std::string(e.what()).find("cpu out of range"), std::string::npos);
  }
}

// Same contract for the subtle case: a cpu id that is small enough to
// allocate cheaply but exceeds the footer's n_cpus. Intact files must bound
// decode by TraceMeta, not just by the format-wide hard cap.
TEST(TraceCorruption, CpuBeyondMetaCountIsRejected) {
  auto bytes = v3_bytes(sample_trace());
  forge_chunk0_payload(bytes, {60});  // n_cpus is 4; 60 is out of range

  OsntReader reader(std::move(bytes));
  try {
    (void)reader.read_all();
    FAIL() << "expected TraceReadError";
  } catch (const TraceReadError& e) {
    EXPECT_EQ(e.chunk_id(), 0);
    EXPECT_NE(std::string(e.what()).find("cpu out of range"), std::string::npos);
  }
}

// With the footer gone (truncation) there is no TraceMeta to bound against;
// the format-wide kMaxCpus cap must still keep a 2^32 cpu id from driving an
// allocation during the recovery scan or the salvage read.
TEST(TraceCorruption, HostileCpuVarintFailsBoundedWhenTruncated) {
  auto bytes = v3_bytes(sample_trace());
  forge_chunk0_payload(bytes, {0x80, 0x80, 0x80, 0x80, 0x10});
  // Chop mid-index so the reader falls back to the forward scan.
  bytes.resize(bytes.size() - osnt::kTrailerSize - 3);

  expect_clean_failure_or_success(std::move(bytes));
}

}  // namespace
}  // namespace osn::trace
