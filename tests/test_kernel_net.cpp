// NFS-over-network I/O: RPC chunking, the tx/rx tasklet pipeline, tasklet
// serialization, rpciod delivery, reply fragmentation, server FIFO.
#include <gtest/gtest.h>

#include "kernel_helpers.hpp"

namespace osn::kernel {
namespace {

using osn::testing::compute_program;
using osn::testing::count_events;
using osn::testing::fixed_models;
using osn::testing::KernelRun;
using osn::testing::ScriptProgram;
using trace::EventType;

TEST(KernelNet, IoSplitsIntoChunkRpcs) {
  KernelRun run;
  run.kernel->spawn(
      "t",
      std::make_unique<ScriptProgram>(std::vector<Action>{ActIo{100 * 1024, true}}),
      true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  // 100 KiB at 32 KiB rsize = 4 RPCs.
  EXPECT_EQ(run.kernel->net().rpcs_sent, 4u);
  EXPECT_EQ(run.kernel->net().rpcs_completed, 4u);
}

TEST(KernelNet, SmallIoIsOneRpc) {
  KernelRun run;
  run.kernel->spawn(
      "t", std::make_unique<ScriptProgram>(std::vector<Action>{ActIo{100, false}}),
      true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  EXPECT_EQ(run.kernel->net().rpcs_sent, 1u);
}

TEST(KernelNet, BlockingIoTakesServerRoundTrip) {
  // Fixed models: wire 20 us each way, server 50 us -> >= 90 us blocked.
  KernelRun run;
  run.kernel->spawn(
      "t", std::make_unique<ScriptProgram>(std::vector<Action>{ActIo{100, true}}),
      true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  EXPECT_GE(run.kernel->now(), 90'000u);
}

TEST(KernelNet, ServerFifoSerializesBurst) {
  // 8 RPCs through a 50 us server: completion spans >= 8 * 50 us.
  KernelRun run;
  run.kernel->spawn(
      "t",
      std::make_unique<ScriptProgram>(std::vector<Action>{ActIo{8 * 32 * 1024, true}}),
      true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  EXPECT_GE(run.kernel->now(), 8u * 50'000u);
}

TEST(KernelNet, TxAndRxTaskletsAppearInTrace) {
  KernelRun run;
  run.kernel->spawn(
      "t",
      std::make_unique<ScriptProgram>(std::vector<Action>{ActIo{64 * 1024, true}}),
      true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  std::size_t tx = 0, rx = 0;
  for (CpuId c = 0; c < model.cpu_count(); ++c) {
    for (const auto& rec : model.cpu_events(c)) {
      if (static_cast<EventType>(rec.event) != EventType::kTaskletEntry) continue;
      if (rec.arg == static_cast<std::uint64_t>(trace::TaskletId::kNetTx)) ++tx;
      if (rec.arg == static_cast<std::uint64_t>(trace::TaskletId::kNetRx)) ++rx;
    }
  }
  EXPECT_GE(tx, 1u);
  EXPECT_GE(rx, 1u);
}

TEST(KernelNet, SameTypeTaskletsNeverOverlapAcrossCpus) {
  // The serialization property from the paper's footnote 5: merge all CPUs'
  // tasklet windows per type and assert none intersect.
  NodeConfig cfg;
  cfg.n_cpus = 4;
  KernelRun run(cfg);
  for (int i = 0; i < 4; ++i) {
    std::vector<Action> script;
    for (int k = 0; k < 10; ++k) {
      script.push_back(ActCompute{us(50)});
      script.push_back(ActIo{64 * 1024, true});
    }
    run.kernel->spawn("t" + std::to_string(i),
                      std::make_unique<ScriptProgram>(std::move(script)), true,
                      static_cast<CpuId>(i));
  }
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(30));
  const auto model = run.finish();
  for (const auto tasklet : {trace::TaskletId::kNetRx, trace::TaskletId::kNetTx}) {
    std::vector<std::pair<TimeNs, TimeNs>> windows;
    for (CpuId c = 0; c < model.cpu_count(); ++c) {
      TimeNs entry = 0;
      for (const auto& rec : model.cpu_events(c)) {
        if (rec.arg != static_cast<std::uint64_t>(tasklet)) continue;
        const auto t = static_cast<EventType>(rec.event);
        if (t == EventType::kTaskletEntry) entry = rec.timestamp;
        if (t == EventType::kTaskletExit) windows.emplace_back(entry, rec.timestamp);
      }
    }
    std::sort(windows.begin(), windows.end());
    for (std::size_t i = 1; i < windows.size(); ++i)
      EXPECT_GE(windows[i].first, windows[i - 1].second)
          << "tasklet windows overlap across CPUs";
  }
}

TEST(KernelNet, RpciodWakesAndDeliversCompletion) {
  KernelRun run;
  const Pid pid = run.kernel->spawn(
      "t",
      std::make_unique<ScriptProgram>(std::vector<Action>{ActIo{100, true},
                                                          ActCompute{ms(1)}}),
      true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  EXPECT_EQ(run.kernel->task(pid).state, TaskState::kExited);
  const auto model = run.finish();
  // rpciod must have been woken at least once.
  bool rpciod_woken = false;
  for (CpuId c = 0; c < model.cpu_count(); ++c)
    for (const auto& rec : model.cpu_events(c))
      if (static_cast<EventType>(rec.event) == EventType::kSchedWakeup &&
          rec.arg == run.kernel->rpciod_pid())
        rpciod_woken = true;
  EXPECT_TRUE(rpciod_woken);
}

TEST(KernelNet, FragmentsMultiplyNetIrqs) {
  auto run_with_frags = [](std::uint32_t frags) {
    NodeConfig cfg;
    cfg.fragments_per_reply = frags;
    KernelRun run(cfg);
    run.kernel->spawn(
        "t",
        std::make_unique<ScriptProgram>(std::vector<Action>{ActIo{4 * 32 * 1024, true}}),
        true, 0);
    run.kernel->start();
    run.kernel->run_until_apps_done(sec(10));
    const auto model = run.finish();
    std::size_t net_irqs = 0;
    for (CpuId c = 0; c < model.cpu_count(); ++c)
      for (const auto& rec : model.cpu_events(c))
        if (static_cast<EventType>(rec.event) == EventType::kIrqEntry &&
            rec.arg == static_cast<std::uint64_t>(trace::IrqVector::kNet))
          ++net_irqs;
    return net_irqs;
  };
  // 4 replies: frags=3 adds 2 extra irqs per reply over frags=1.
  EXPECT_EQ(run_with_frags(3), run_with_frags(1) + 4u * 2u);
}

TEST(KernelNet, RoundRobinSpreadsNetIrqs) {
  NodeConfig cfg;
  cfg.n_cpus = 4;
  cfg.net_irq_round_robin = true;
  KernelRun run(cfg);
  run.kernel->spawn(
      "t",
      std::make_unique<ScriptProgram>(std::vector<Action>{ActIo{8 * 32 * 1024, true}}),
      true, 0);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  std::set<std::uint16_t> cpus_hit;
  for (CpuId c = 0; c < model.cpu_count(); ++c)
    for (const auto& rec : model.cpu_events(c))
      if (static_cast<EventType>(rec.event) == EventType::kIrqEntry &&
          rec.arg == static_cast<std::uint64_t>(trace::IrqVector::kNet))
        cpus_hit.insert(rec.cpu);
  EXPECT_GE(cpus_hit.size(), 3u);
}

TEST(KernelNet, PinnedIrqsAllOnCpuZero) {
  NodeConfig cfg;
  cfg.n_cpus = 4;
  cfg.net_irq_round_robin = false;
  KernelRun run(cfg);
  run.kernel->spawn(
      "t",
      std::make_unique<ScriptProgram>(std::vector<Action>{ActIo{8 * 32 * 1024, true}}),
      true, 1);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  for (CpuId c = 1; c < model.cpu_count(); ++c) {
    for (const auto& rec : model.cpu_events(c)) {
      if (static_cast<EventType>(rec.event) == EventType::kIrqEntry) {
        EXPECT_NE(rec.arg, static_cast<std::uint64_t>(trace::IrqVector::kNet));
      }
    }
  }
}

}  // namespace
}  // namespace osn::kernel
