// Litmus suites: the tracebuf hot path under the model checker.
//
// Each litmus instantiates the *production* templates (BasicRingBuffer /
// BasicChannelSet / BasicConsumer) with the checker's instrumented atomics
// policy and explores every bounded-preemption interleaving. Passing suites
// assert exhaustiveness; failing suites assert that the failure carries a
// schedule seed that replays to the identical failure.
//
// The mutation check re-introduces the PR 1 overwrite-reclaim bug by
// instantiating with CheckedPolicyNoContracts (the guard assert compiled
// out): the checker must then catch the resulting slot race directly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/atomic.hpp"
#include "check/checker.hpp"
#include "tracebuf/channel_set.hpp"
#include "tracebuf/consumer.hpp"
#include "tracebuf/ring_buffer.hpp"

namespace {

using osn::check::CheckedPolicy;
using osn::check::CheckedPolicyNoContracts;
using osn::check::CheckFailure;
using osn::check::explore;
using osn::check::Options;
using osn::check::Result;
using osn::tracebuf::BasicChannelSet;
using osn::tracebuf::BasicConsumer;
using osn::tracebuf::BasicRingBuffer;
using osn::tracebuf::EventRecord;
using osn::tracebuf::FullPolicy;

using CheckedRing = BasicRingBuffer<CheckedPolicy>;
using CheckedChannels = BasicChannelSet<CheckedPolicy>;
using CheckedConsumer = BasicConsumer<CheckedPolicy>;

EventRecord rec(std::uint64_t ts, std::uint16_t cpu, std::uint64_t arg) {
  EventRecord r;
  r.timestamp = ts;
  r.cpu = cpu;
  r.arg = arg;
  return r;
}

// SPSC reserve/commit: a producer pushing into a discard-mode ring and a
// consumer popping concurrently never lose or duplicate a record — every
// pushed record is either popped (in order) or counted in lost().
TEST(LitmusTracebuf, SpscNoLossNoDuplication) {
  Options opt;
  opt.max_preemptions = 2;
  const Result res = explore(opt, [] {
    CheckedRing ring(2, FullPolicy::kDiscard);
    std::vector<std::uint64_t> got;
    osn::check::spawn([&] {
      for (std::uint64_t i = 1; i <= 3; ++i) (void)ring.try_push(rec(i, 0, i));
    });
    osn::check::spawn([&] {
      for (int polls = 0; polls < 3; ++polls)
        if (auto r = ring.try_pop()) got.push_back(r->arg);
    });
    osn::check::join_all();
    while (auto r = ring.try_pop()) got.push_back(r->arg);

    // Discard drops the *newest* record, so what arrives is exactly the
    // prefix 1..n, in order, and the drops are accounted.
    OSN_CHECK(got.size() + ring.lost() == 3);
    for (std::size_t i = 0; i < got.size(); ++i) OSN_CHECK(got[i] == i + 1);
    OSN_CHECK(ring.overwritten() == 0);
  });
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.runs, 1u);
}

// size() is clamped to capacity: during an overwrite reclaim the producer
// bumps tail_ and head_ separately, so an unclamped racing reader could
// transiently observe capacity + 1 (the PR 1 size bug).
TEST(LitmusTracebuf, SizeClampedDuringOverwriteReclaim) {
  Options opt;
  opt.max_preemptions = 2;
  const Result res = explore(opt, [] {
    CheckedRing ring(2, FullPolicy::kOverwrite);
    (void)ring.try_push(rec(1, 0, 1));
    (void)ring.try_push(rec(2, 0, 2));
    osn::check::spawn([&] {
      (void)ring.try_push(rec(3, 0, 3));  // full: reclaims the oldest slot
    });
    osn::check::spawn([&] {
      for (int i = 0; i < 3; ++i) OSN_CHECK(ring.size() <= ring.capacity());
    });
    osn::check::join_all();
    OSN_CHECK(ring.overwritten() == 1);
    OSN_CHECK(ring.size() == 2);
  });
  EXPECT_TRUE(res.exhausted);
}

// With contracts compiled in, pushing into a full overwrite ring while a
// consumer is attached trips the reclaim guard — as a replayable failure.
TEST(LitmusTracebuf, OverwriteReclaimGuardFiresUnderConsumer) {
  auto body = [] {
    CheckedRing ring(2, FullPolicy::kOverwrite);
    ring.attach_consumer();
    (void)ring.try_push(rec(1, 0, 1));
    (void)ring.try_push(rec(2, 0, 2));
    osn::check::spawn([&] { (void)ring.try_push(rec(3, 0, 3)); });
    osn::check::spawn([&] { (void)ring.try_pop(); });
    osn::check::join_all();
  };
  std::string schedule;
  std::string message;
  try {
    explore(Options{}, body);
    FAIL() << "reclaim guard did not fire";
  } catch (const CheckFailure& f) {
    schedule = f.schedule();
    message = f.what();
  }
  EXPECT_NE(message.find("contract violated"), std::string::npos);
  EXPECT_NE(message.find("overwrite reclaim with a consumer attached"), std::string::npos);

  Options replay;
  replay.replay = schedule;
  try {
    explore(replay, body);
    FAIL() << "replay did not reproduce the guard failure";
  } catch (const CheckFailure& f) {
    EXPECT_EQ(std::string(f.what()), message);
    EXPECT_EQ(f.schedule(), schedule);
  }
}

// Mutation check: compile the guard OUT (CheckedPolicyNoContracts) — the
// exact bug PR 1 fixed. The checker must still catch the underlying
// corruption: the reclaiming producer overwrites the slot the concurrent
// consumer reads without any happens-before edge (torn-write visibility at
// the consumer), and the failing schedule must replay deterministically.
TEST(LitmusTracebuf, MutationUnguardedReclaimRaceIsCaught) {
  using MutRing = BasicRingBuffer<CheckedPolicyNoContracts>;
  auto body = [] {
    MutRing ring(2, FullPolicy::kOverwrite);
    ring.attach_consumer();
    (void)ring.try_push(rec(1, 0, 1));
    (void)ring.try_push(rec(2, 0, 2));
    osn::check::spawn([&] { (void)ring.try_push(rec(3, 0, 3)); });
    osn::check::spawn([&] { (void)ring.try_pop(); });
    osn::check::join_all();
  };
  std::string schedule;
  std::string message;
  try {
    explore(Options{}, body);
    FAIL() << "checker missed the unguarded overwrite-reclaim race";
  } catch (const CheckFailure& f) {
    schedule = f.schedule();
    message = f.what();
  }
  EXPECT_NE(message.find("data race"), std::string::npos) << message;
  EXPECT_NE(schedule, "-");

  Options replay;
  replay.replay = schedule;
  try {
    explore(replay, body);
    FAIL() << "replay did not reproduce the race";
  } catch (const CheckFailure& f) {
    EXPECT_EQ(std::string(f.what()), message);
    EXPECT_EQ(f.schedule(), schedule);
  }
}

// ChannelSet::emit racing overwrite-reclaim across three producers: each CPU
// owns its channel (SPSC per channel), so concurrent emits with reclaim are
// safe without a consumer — exhaustively, under every interleaving — and the
// post-hoc merge is (timestamp, cpu)-monotonic with exact loss accounting.
TEST(LitmusTracebuf, ThreeProducerEmitWithOverwriteReclaim) {
  Options opt;
  opt.max_preemptions = 1;  // three producers: keep the space tractable
  const Result res = explore(opt, [] {
    CheckedChannels channels(3, 2, FullPolicy::kOverwrite);
    for (std::uint16_t p = 0; p < 3; ++p) {
      osn::check::spawn([&channels, p] {
        for (std::uint64_t i = 1; i <= 3; ++i)
          (void)channels.emit(p, rec(i, p, i));
      });
    }
    osn::check::join_all();
    const auto merged = channels.drain_merged();
    // 9 pushed, 1 reclaimed per capacity-2 channel.
    OSN_CHECK(merged.size() == 6);
    OSN_CHECK(channels.total_lost() == 0);
    for (std::uint16_t p = 0; p < 3; ++p)
      OSN_CHECK(channels.channel(p).overwritten() == 1);
    for (std::size_t i = 1; i < merged.size(); ++i) {
      const bool ordered =
          merged[i - 1].timestamp < merged[i].timestamp ||
          (merged[i - 1].timestamp == merged[i].timestamp &&
           merged[i - 1].cpu < merged[i].cpu);
      OSN_CHECK(ordered);
    }
  });
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.runs, 1u);
}

// Watermark-gated live merge: the consumer (driven step by step through
// run_once on a checker thread) only emits a record once no channel can
// still produce an earlier one, so the emitted stream is (timestamp, cpu)
// monotonic under every interleaving with the two producers — including
// mid-stream, not just after the final flush.
TEST(LitmusTracebuf, ConsumerWatermarkMergeIsMonotonic) {
  Options opt;
  opt.max_preemptions = 1;  // three threads: keep the space tractable
  const Result res = explore(opt, [] {
    CheckedChannels channels(2, 4, FullPolicy::kDiscard);
    std::vector<EventRecord> emitted;
    CheckedConsumer::Options copt;
    copt.batch_size = 2;
    CheckedConsumer consumer(
        channels,
        [&emitted](const EventRecord& r) {
          if (!emitted.empty()) {
            const EventRecord& prev = emitted.back();
            OSN_CHECK_MSG(prev.timestamp < r.timestamp ||
                              (prev.timestamp == r.timestamp && prev.cpu < r.cpu),
                          "live merge emitted out of (timestamp, cpu) order");
          }
          emitted.push_back(r);
        },
        copt);
    osn::check::spawn([&channels] {
      (void)channels.emit(0, rec(10, 0, 1));
      (void)channels.emit(0, rec(20, 0, 2));
    });
    osn::check::spawn([&channels] {
      (void)channels.emit(1, rec(15, 1, 3));
      (void)channels.emit(1, rec(25, 1, 4));
    });
    osn::check::spawn([&consumer] {
      for (int i = 0; i < 2; ++i) (void)consumer.run_once();
    });
    osn::check::join_all();
    consumer.stop();  // producers quiescent: final flush drains everything
    OSN_CHECK(emitted.size() == 4);
    OSN_CHECK(consumer.stats().records == 4);
    OSN_CHECK(channels.total_lost() == 0);
  });
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.runs, 1u);
}

}  // namespace
