#include <gtest/gtest.h>

#include "common/format.hpp"

namespace osn {
namespace {

TEST(WithCommas, SmallNumbersUnchanged) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(7), "7");
  EXPECT_EQ(with_commas(999), "999");
}

TEST(WithCommas, GroupsOfThree) {
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(4380), "4,380");
  EXPECT_EQ(with_commas(69398061), "69,398,061");
  EXPECT_EQ(with_commas(1234567890123ULL), "1,234,567,890,123");
}

TEST(FmtDuration, PicksAdaptiveUnit) {
  EXPECT_EQ(fmt_duration(250), "250 ns");
  EXPECT_EQ(fmt_duration(4380), "4.38 us");
  EXPECT_EQ(fmt_duration(69'398'061), "69.40 ms");
  EXPECT_EQ(fmt_duration(2'000'000'000), "2.00 s");
}

TEST(FmtDuration, BoundaryValues) {
  EXPECT_EQ(fmt_duration(999), "999 ns");
  EXPECT_EQ(fmt_duration(1000), "1.00 us");
  EXPECT_EQ(fmt_duration(999'999'999), "1000.00 ms");
}

TEST(FmtFixed, RoundsToPrecision) {
  EXPECT_EQ(fmt_fixed(82.43, 1), "82.4");
  EXPECT_EQ(fmt_fixed(82.46, 1), "82.5");
  EXPECT_EQ(fmt_fixed(1.0, 0), "1");
}

TEST(FmtPercent, FractionToPercent) {
  EXPECT_EQ(fmt_percent(0.824), "82.4%");
  EXPECT_EQ(fmt_percent(0.05, 0), "5%");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
}

TEST(Pad, LongerStringsPassThrough) {
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace osn
