// The noise definition: attribution, the runnable filter, requested-service
// exclusion, nesting ablation, statistics normalization.
#include <gtest/gtest.h>

#include "noise/analysis.hpp"
#include "trace_builder.hpp"

namespace osn::noise {
namespace {

using osn::testing::TraceBuilder;
using trace::EventType;

TraceBuilder base_builder() {
  TraceBuilder b(2);
  b.task(1, "app", true).task(9, "rpciod", false, true);
  return b;
}

TEST(Analysis, KernelIntervalInAppContextIsNoise) {
  auto b = base_builder();
  b.pair(0, 100, 2'000, 1, EventType::kIrqEntry, 0);
  const auto model_a = b.build();
  NoiseAnalysis a(model_a);
  ASSERT_EQ(a.noise_intervals().size(), 1u);
  EXPECT_EQ(a.total_noise(1), 1'900u);
}

TEST(Analysis, KernelIntervalInDaemonContextExcluded) {
  auto b = base_builder();
  b.pair(0, 100, 2'000, 9, EventType::kIrqEntry, 0);  // current = rpciod
  const auto model_a = b.build();
  NoiseAnalysis a(model_a);
  EXPECT_TRUE(a.noise_intervals().empty());
}

TEST(Analysis, IdleContextExcluded) {
  auto b = base_builder();
  b.pair(0, 100, 2'000, kIdlePid, EventType::kIrqEntry, 0);
  const auto model_a = b.build();
  NoiseAnalysis a(model_a);
  EXPECT_TRUE(a.noise_intervals().empty());
}

TEST(Analysis, RunnableFilterDropsBarrierWindows) {
  auto b = base_builder();
  b.ev(0, 1'000, 1, EventType::kAppMark,
       static_cast<std::uint64_t>(trace::AppMark::kBarrierEnter));
  b.pair(0, 2'000, 3'000, 1, EventType::kIrqEntry, 0);  // inside the window
  b.ev(0, 5'000, 1, EventType::kAppMark,
       static_cast<std::uint64_t>(trace::AppMark::kBarrierExit));
  b.pair(0, 6'000, 7'000, 1, EventType::kIrqEntry, 0);  // outside

  const auto model_filtered = b.build();

  NoiseAnalysis filtered(model_filtered);
  EXPECT_EQ(filtered.noise_intervals().size(), 1u);
  EXPECT_EQ(filtered.noise_intervals()[0].start, 6'000u);

  AnalysisOptions opts;
  opts.runnable_filter = false;
  const auto model_unfiltered = b.build();
  NoiseAnalysis unfiltered(model_unfiltered, opts);
  EXPECT_EQ(unfiltered.noise_intervals().size(), 2u);
}

TEST(Analysis, InCommWindowQueries) {
  auto b = base_builder();
  b.ev(0, 1'000, 1, EventType::kAppMark,
       static_cast<std::uint64_t>(trace::AppMark::kBarrierEnter));
  b.ev(0, 5'000, 1, EventType::kAppMark,
       static_cast<std::uint64_t>(trace::AppMark::kBarrierExit));
  const auto model_a = b.build();
  NoiseAnalysis a(model_a);
  EXPECT_FALSE(a.in_comm_window(1, 999));
  EXPECT_TRUE(a.in_comm_window(1, 1'000));
  EXPECT_TRUE(a.in_comm_window(1, 4'999));
  EXPECT_FALSE(a.in_comm_window(1, 5'000));
  EXPECT_FALSE(a.in_comm_window(2, 2'000));
}

TEST(Analysis, SyscallsExcludedByDefault) {
  auto b = base_builder();
  b.pair(0, 100, 900, 1, EventType::kSyscallEntry,
         static_cast<std::uint64_t>(trace::SyscallNr::kRead));
  const auto model_a = b.build();
  NoiseAnalysis a(model_a);
  EXPECT_TRUE(a.noise_intervals().empty());

  AnalysisOptions opts;
  opts.include_requested_service = true;
  const auto model_with = b.build();
  NoiseAnalysis with(model_with, opts);
  EXPECT_EQ(with.noise_intervals().size(), 1u);
}

TEST(Analysis, NestingAblationDoubleCounts) {
  // Nested irq inside tasklet: with resolution, charges sum to wall time;
  // without, the sum exceeds it — the ablation quantifies the error.
  auto b = base_builder();
  b.ev(0, 1'000, 1, EventType::kTaskletEntry,
       static_cast<std::uint64_t>(trace::TaskletId::kNetRx));
  b.ev(0, 2'000, 1, EventType::kIrqEntry, 0);
  b.ev(0, 4'000, 1, EventType::kIrqExit, 0);
  b.ev(0, 6'000, 1, EventType::kTaskletExit,
       static_cast<std::uint64_t>(trace::TaskletId::kNetRx));

  const auto model_resolved = b.build();

  NoiseAnalysis resolved(model_resolved);
  DurNs resolved_total = 0;
  for (const auto& iv : resolved.noise_intervals()) resolved_total += resolved.charged(iv);
  EXPECT_EQ(resolved_total, 5'000u);

  AnalysisOptions opts;
  opts.resolve_nesting = false;
  const auto model_naive = b.build();
  NoiseAnalysis naive(model_naive, opts);
  DurNs naive_total = 0;
  for (const auto& iv : naive.noise_intervals()) naive_total += naive.charged(iv);
  EXPECT_EQ(naive_total, 7'000u);  // the 2 us irq counted twice
}

TEST(Analysis, CategoryBreakdownPerTask) {
  auto b = base_builder();
  b.task(2, "app2", true);
  b.pair(0, 100, 1'100, 1, EventType::kIrqEntry, 0);          // periodic, app1
  b.pair(0, 2'000, 4'000, 1, EventType::kPageFaultEntry, 0);  // pf, app1
  b.pair(1, 100, 600, 2, EventType::kPageFaultEntry, 0);      // pf, app2
  const auto model_a = b.build();
  NoiseAnalysis a(model_a);
  const auto bd1 = a.category_breakdown(1);
  EXPECT_EQ(bd1[static_cast<std::size_t>(NoiseCategory::kPeriodic)], 1'000u);
  EXPECT_EQ(bd1[static_cast<std::size_t>(NoiseCategory::kPageFault)], 2'000u);
  const auto bd2 = a.category_breakdown(2);
  EXPECT_EQ(bd2[static_cast<std::size_t>(NoiseCategory::kPageFault)], 500u);
  const auto all = a.category_breakdown_all();
  EXPECT_EQ(all[static_cast<std::size_t>(NoiseCategory::kPageFault)], 2'500u);
  EXPECT_EQ(a.total_noise(1), 3'000u);
}

TEST(Analysis, ActivityStatsComputesTableColumns) {
  TraceBuilder b(2);  // 2 CPUs -> freq normalized per CPU
  b.task(1, "app", true);
  // Three timer irqs of 1000/2000/3000 ns over a 1 s trace on 2 CPUs.
  b.pair(0, 1'000, 2'000, 1, EventType::kIrqEntry, 0);
  b.pair(0, 10'000, 12'000, 1, EventType::kIrqEntry, 0);
  b.pair(1, 5'000, 8'000, 1, EventType::kIrqEntry, 0);
  const auto model_a = b.build(kNsPerSec);
  NoiseAnalysis a(model_a);
  const EventStats s = a.activity_stats(ActivityKind::kTimerIrq);
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.freq_ev_per_sec, 1.5, 1e-9);  // 3 events / 1 s / 2 cpus
  EXPECT_NEAR(s.avg_ns, 2'000.0, 1e-9);
  EXPECT_EQ(s.min_ns, 1'000u);
  EXPECT_EQ(s.max_ns, 3'000u);
}

TEST(Analysis, PreemptionStatsIncluded) {
  auto b = base_builder();
  b.ev(0, 1'000, 1, EventType::kSchedSwitch, trace::pack_switch({1, 9, true}));
  b.ev(0, 3'215, 9, EventType::kSchedSwitch, trace::pack_switch({9, 1, false}));
  const auto model_a = b.build();
  NoiseAnalysis a(model_a);
  const EventStats s = a.activity_stats(ActivityKind::kPreemption);
  EXPECT_EQ(s.count, 1u);
  EXPECT_NEAR(s.avg_ns, 2'215.0, 1e-9);
  const auto bd = a.category_breakdown(1);
  EXPECT_EQ(bd[static_cast<std::size_t>(NoiseCategory::kPreemption)], 2'215u);
}

TEST(Analysis, NoiseDurationsFilterByKind) {
  auto b = base_builder();
  b.pair(0, 100, 1'100, 1, EventType::kIrqEntry, 0);
  b.pair(0, 2'000, 2'500, 1, EventType::kPageFaultEntry, 0);
  const auto model_a = b.build();
  NoiseAnalysis a(model_a);
  const auto pf = a.noise_durations(ActivityKind::kPageFault);
  ASSERT_EQ(pf.size(), 1u);
  EXPECT_EQ(pf[0], 500.0);
  EXPECT_EQ(a.noise_durations(ActivityKind::kNetIrq).size(), 0u);
}

TEST(Analysis, EmptyTraceYieldsEmptyAnalysis) {
  const auto model_a = TraceBuilder(1).task(1, "app", true).build(100);
  NoiseAnalysis a(model_a);
  EXPECT_TRUE(a.noise_intervals().empty());
  EXPECT_EQ(a.total_noise(1), 0u);
  EXPECT_EQ(a.activity_stats(ActivityKind::kTimerIrq).count, 0u);
}

}  // namespace
}  // namespace osn::noise
