// Demand paging: first-touch faults, revisits are free, fault kinds, region
// bounds.
#include <gtest/gtest.h>

#include "kernel_helpers.hpp"

namespace osn::kernel {
namespace {

using osn::testing::count_events;
using osn::testing::fixed_models;
using osn::testing::KernelRun;
using osn::testing::ScriptProgram;
using trace::EventType;

TEST(KernelMm, EachFreshPageFaultsOnce) {
  KernelRun run;
  const Pid pid = run.kernel->spawn(
      "t", std::make_unique<ScriptProgram>(std::vector<Action>{ActTouch{0, 0, 37}}),
      true, 0);
  run.kernel->add_region(pid, 64, trace::PageFaultKind::kMinorAnon);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  EXPECT_EQ(run.kernel->task(pid).fault_count, 37u);
  const auto model = run.finish();
  EXPECT_EQ(count_events(model, EventType::kPageFaultEntry), 37u);
  EXPECT_EQ(count_events(model, EventType::kPageFaultExit), 37u);
}

TEST(KernelMm, RetouchDoesNotFaultAgain) {
  KernelRun run;
  const Pid pid = run.kernel->spawn(
      "t",
      std::make_unique<ScriptProgram>(std::vector<Action>{
          ActTouch{0, 0, 10}, ActTouch{0, 0, 10}, ActTouch{0, 5, 10}}),
      true, 0);
  run.kernel->add_region(pid, 32, trace::PageFaultKind::kMinorAnon);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  // First touch: 10 faults; second: 0; third overlaps 5 mapped + 5 fresh.
  EXPECT_EQ(run.kernel->task(pid).fault_count, 15u);
}

TEST(KernelMm, CowRegionFaultKindDependsOnWrite) {
  KernelRun run;
  const Pid pid = run.kernel->spawn(
      "t",
      std::make_unique<ScriptProgram>(std::vector<Action>{
          ActTouch{0, 0, 3, /*write=*/true}, ActTouch{0, 4, 3, /*write=*/false}}),
      true, 0);
  run.kernel->add_region(pid, 16, trace::PageFaultKind::kCow);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  std::size_t cow = 0, minor = 0;
  for (const auto& rec : model.cpu_events(0)) {
    if (static_cast<EventType>(rec.event) != EventType::kPageFaultEntry) continue;
    if (rec.arg == static_cast<std::uint64_t>(trace::PageFaultKind::kCow)) ++cow;
    if (rec.arg == static_cast<std::uint64_t>(trace::PageFaultKind::kMinorAnon)) ++minor;
  }
  EXPECT_EQ(cow, 3u);
  EXPECT_EQ(minor, 3u);
}

TEST(KernelMm, PerPageUserCostAccrues) {
  // 1000 mapped pages at 30 ns each = 30 us of pure user time on retouch.
  KernelRun run;
  const Pid pid = run.kernel->spawn(
      "t",
      std::make_unique<ScriptProgram>(std::vector<Action>{
          ActTouch{0, 0, 1000, false, 0},  // map for free (0 ns/page)
          ActTouch{0, 0, 1000, false, 30}}),
      true, 0);
  run.kernel->add_region(pid, 1024, trace::PageFaultKind::kMinorAnon);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  EXPECT_EQ(run.kernel->task(pid).fault_count, 1000u);
  // Wall time >= fault handler time (1000 * 1 us) + 30 us of touching.
  EXPECT_GE(run.kernel->now(), 1000u * 1000u + 30'000u);
}

TEST(KernelMm, FaultDurationFollowsModel) {
  auto models = fixed_models();
  models.pf_minor_anon = stats::DurationModel::fixed(4'380);
  KernelRun run({}, std::move(models));
  const Pid pid = run.kernel->spawn(
      "t", std::make_unique<ScriptProgram>(std::vector<Action>{ActTouch{0, 0, 5}}),
      true, 0);
  run.kernel->add_region(pid, 8, trace::PageFaultKind::kMinorAnon);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  const auto model = run.finish();
  TimeNs entry = 0;
  for (const auto& rec : model.cpu_events(0)) {
    const auto t = static_cast<EventType>(rec.event);
    if (t == EventType::kPageFaultEntry) entry = rec.timestamp;
    if (t == EventType::kPageFaultExit) {
      EXPECT_EQ(rec.timestamp - entry, 4'380u);
    }
  }
}

TEST(KernelMm, TouchBeyondRegionDies) {
  KernelRun run;
  const Pid pid = run.kernel->spawn(
      "t", std::make_unique<ScriptProgram>(std::vector<Action>{ActTouch{0, 0, 100}}),
      true, 0);
  run.kernel->add_region(pid, 10, trace::PageFaultKind::kMinorAnon);
  run.kernel->start();
  EXPECT_DEATH(run.kernel->run_until_apps_done(sec(10)), "beyond region");
}

TEST(KernelMm, UnknownRegionDies) {
  KernelRun run;
  run.kernel->spawn(
      "t", std::make_unique<ScriptProgram>(std::vector<Action>{ActTouch{3, 0, 1}}),
      true, 0);
  run.kernel->start();
  EXPECT_DEATH(run.kernel->run_until_apps_done(sec(10)), "unknown region");
}

TEST(KernelMm, MultipleRegionsIndependent) {
  KernelRun run;
  const Pid pid = run.kernel->spawn(
      "t",
      std::make_unique<ScriptProgram>(std::vector<Action>{ActTouch{0, 0, 4},
                                                          ActTouch{1, 0, 6}}),
      true, 0);
  EXPECT_EQ(run.kernel->add_region(pid, 8, trace::PageFaultKind::kMinorAnon), 0u);
  EXPECT_EQ(run.kernel->add_region(pid, 8, trace::PageFaultKind::kFileMinor), 1u);
  run.kernel->start();
  run.kernel->run_until_apps_done(sec(10));
  EXPECT_EQ(run.kernel->task(pid).fault_count, 10u);
}

}  // namespace
}  // namespace osn::kernel
