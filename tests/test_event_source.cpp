// EventSource contract tests: every ingestion path (in-memory model, OSNT
// file v1/v2/v3) must deliver the identical trace — same model, same merged
// order, same windows — and the v3 parallel/indexed fast paths must be
// bit-identical to the generic ones at any worker count.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "noise/streaming.hpp"
#include "trace/event_source.hpp"
#include "trace/osnt_reader.hpp"
#include "trace/trace_io.hpp"
#include "trace_builder.hpp"

namespace osn::trace {
namespace {

using osn::testing::TraceBuilder;

TraceModel sample_trace() {
  TraceBuilder b(4);
  b.task(1, "rank0", true).task(2, "rank1", true).task(9, "events/0", false, true);
  TimeNs t = 100;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const CpuId cpu = static_cast<CpuId>(i % 4);
    const Pid pid = static_cast<Pid>(1 + i % 2);
    b.pair(cpu, t, t + 300, pid, EventType::kIrqEntry, 0);
    b.pair(cpu, t + 400, t + 650, pid, EventType::kSoftirqEntry, 1);
    if (i % 7 == 0) b.ev(cpu, t + 700, 9, EventType::kSchedWakeup, 1);
    t += 900 + 11 * (i % 5);
  }
  return b.build(t + 500);
}

std::string write_temp(const TraceModel& model, OsntStreamWriter::Format format,
                       const std::string& name, std::size_t chunk_records = 32) {
  const std::string path = ::testing::TempDir() + "/" + name;
  OsntStreamWriter writer(path, chunk_records, format);
  for (const auto& rec : model.merged()) writer.append(rec);
  EXPECT_TRUE(writer.finish(model.meta(), model.tasks()));
  return path;
}

// Model source, v1 file, v2 file and v3 file all materialize the same trace.
TEST(EventSource, AllSourcesYieldIdenticalModels) {
  const TraceModel original = sample_trace();

  const std::string v1 = ::testing::TempDir() + "/es_v1.osnt";
  ASSERT_TRUE(write_trace_file(original, v1));
  const std::string v2 = write_temp(original, OsntStreamWriter::Format::kV2, "es_v2.osnt");
  const std::string v3 = write_temp(original, OsntStreamWriter::Format::kV3, "es_v3.osnt");

  auto from_model = wrap_model(original);
  EXPECT_EQ(from_model->to_model(), original);
  for (const std::string& path : {v1, v2, v3}) {
    auto source = open_trace_source(path);
    EXPECT_EQ(source->to_model(), original) << path;
    EXPECT_EQ(source->meta(), original.meta()) << path;
    EXPECT_EQ(source->tasks(), original.tasks()) << path;
  }
  std::remove(v1.c_str());
  std::remove(v2.c_str());
  std::remove(v3.c_str());
}

// for_each delivers the global merged order on every source.
TEST(EventSource, ForEachDeliversMergedOrder) {
  const TraceModel original = sample_trace();
  const auto merged = original.merged();
  const std::string v3 = write_temp(original, OsntStreamWriter::Format::kV3, "es_fe.osnt");

  auto collect = [](EventSource& s) {
    std::vector<tracebuf::EventRecord> out;
    s.for_each([&out](const tracebuf::EventRecord& r) { out.push_back(r); });
    return out;
  };
  ModelEventSource model_source(original);
  EXPECT_EQ(collect(model_source), merged);
  FileEventSource file_source(v3);
  EXPECT_EQ(collect(file_source), merged);
  std::remove(v3.c_str());
}

// The v3 parallel decode is bit-identical to the serial one at any jobs
// count — the reader-side half of the determinism contract.
TEST(EventSource, ParallelDecodeIsDeterministic) {
  const TraceModel original = sample_trace();
  const std::string v3 =
      write_temp(original, OsntStreamWriter::Format::kV3, "es_par.osnt", /*chunk_records=*/8);

  FileEventSource serial(v3);
  const TraceModel reference = serial.to_model(nullptr);
  EXPECT_EQ(reference, original);
  for (const std::size_t jobs : {2u, 8u}) {
    ThreadPool pool(jobs);
    FileEventSource source(v3);
    EXPECT_EQ(source.to_model(&pool), reference) << jobs << " jobs";
  }
  std::remove(v3.c_str());
}

// Windowed reads: the v3 index path (decode only overlapping chunks) equals
// the generic fallback (full decode + clip), serial and parallel, and the
// window edges repair cut entry/exit frames so the model still validates.
TEST(EventSource, WindowedReadMatchesGenericClip) {
  const TraceModel original = sample_trace();
  const std::string v3 =
      write_temp(original, OsntStreamWriter::Format::kV3, "es_win.osnt", /*chunk_records=*/8);

  const TimeNs mid = original.meta().end_ns / 2;
  const std::vector<std::pair<TimeNs, TimeNs>> windows = {
      {0, original.meta().end_ns},       // everything
      {mid / 2, mid},                    // interior slice
      {305, 60'000},                     // cuts through open frames
      {original.meta().end_ns, original.meta().end_ns + 1000},  // past the end
  };
  for (const auto& [t0, t1] : windows) {
    const TraceModel expected = window_of(original, t0, t1);
    EXPECT_EQ(expected.validate(), "") << t0 << ":" << t1;

    FileEventSource file_source(v3);
    EXPECT_EQ(file_source.to_model_window(t0, t1), expected) << t0 << ":" << t1;

    ThreadPool pool(4);
    FileEventSource par_source(v3);
    EXPECT_EQ(par_source.to_model_window(t0, t1, &pool), expected) << t0 << ":" << t1;

    // Generic fallback (ModelEventSource has no index).
    ModelEventSource model_source(original);
    EXPECT_EQ(model_source.to_model_window(t0, t1), expected) << t0 << ":" << t1;
  }
  std::remove(v3.c_str());
}

// A window cutting through nested frames keeps pairing balanced: unmatched
// exits at the head and unclosed entries at the tail are dropped.
TEST(EventSource, WindowRepairsCutFrames) {
  TraceBuilder b(1);
  b.task(1, "rank0", true);
  // Events in per-CPU time order: a syscall spanning the window start, an
  // irq pair nested fully inside it, and a syscall spanning the window end.
  b.ev(0, 100, 1, EventType::kSyscallEntry, 0);
  b.ev(0, 2'000, 1, EventType::kIrqEntry, 0);
  b.ev(0, 3'000, 1, EventType::kIrqExit, 0);
  b.ev(0, 10'000, 1, EventType::kSyscallExit, 0);
  b.ev(0, 12'000, 1, EventType::kSyscallEntry, 1);
  b.ev(0, 30'000, 1, EventType::kSyscallExit, 1);
  const TraceModel model = b.build(40'000);

  const TraceModel window = window_of(model, 1'500, 15'000);
  EXPECT_EQ(window.validate(), "");
  // Kept: the inner irq pair + the syscall exit's partner was cut -> dropped;
  // the second syscall's entry is unclosed -> dropped.
  ASSERT_EQ(window.total_events(), 2u);
  EXPECT_EQ(window.cpu_events(0)[0].timestamp, 2'000u);
  EXPECT_EQ(window.cpu_events(0)[1].timestamp, 3'000u);
  EXPECT_EQ(window.meta().start_ns, 1'500u);
  EXPECT_EQ(window.meta().end_ns, 15'000u);
}

// The streaming analyzer accepts any EventSource and produces the same
// accumulators whichever source fed it.
TEST(EventSource, StreamingStatsConsumesAnySource) {
  const TraceModel original = sample_trace();
  const std::string v3 = write_temp(original, OsntStreamWriter::Format::kV3, "es_ss.osnt");

  noise::StreamingStats from_model;
  ModelEventSource model_source(original);
  from_model.consume(model_source);

  noise::StreamingStats from_file;
  FileEventSource file_source(v3);
  from_file.consume(file_source);

  EXPECT_EQ(from_model.consumed(), original.total_events());
  EXPECT_EQ(from_file.consumed(), original.total_events());
  EXPECT_EQ(from_model.open_frames(), 0u);
  EXPECT_EQ(from_file.open_frames(), 0u);
  const DurNs dur = original.duration();
  for (int k = 0; k < static_cast<int>(noise::ActivityKind::kMaxKind); ++k) {
    const auto kind = static_cast<noise::ActivityKind>(k);
    const auto a = from_model.activity_stats(kind, dur, original.cpu_count());
    const auto b = from_file.activity_stats(kind, dur, original.cpu_count());
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.avg_ns, b.avg_ns);
    EXPECT_EQ(a.max_ns, b.max_ns);
    EXPECT_EQ(a.min_ns, b.min_ns);
  }
  std::remove(v3.c_str());
}

}  // namespace
}  // namespace osn::trace
