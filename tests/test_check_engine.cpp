// Self-tests for the concurrency model checker (src/check): exhaustiveness
// of the SC interleaving exploration, happens-before race detection from
// declared memory orders, deterministic replay of failing schedules, and the
// bounded-preemption / seen-state-pruning machinery.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <utility>

#include "check/atomic.hpp"
#include "check/checker.hpp"
#include "common/assert.hpp"

namespace {

using osn::check::Atomic;
using osn::check::Cell;
using osn::check::CheckFailure;
using osn::check::explore;
using osn::check::Options;
using osn::check::Result;
using osn::check::schedule_from_string;
using osn::check::schedule_to_string;
using osn::check::Schedule;

TEST(CheckEngine, ActiveOnlyInsideExplore) {
  EXPECT_FALSE(osn::check::active());
  osn::check::yield_point();  // no-op outside the checker
  bool was_active = false;
  explore(Options{}, [&] { was_active = osn::check::active(); });
  EXPECT_TRUE(was_active);
  EXPECT_FALSE(osn::check::active());
}

TEST(CheckEngine, ScheduleStringRoundTrip) {
  EXPECT_EQ(schedule_to_string(Schedule{}), "-");
  EXPECT_EQ(schedule_to_string(Schedule{0, 1, 1, 2}), "0.1.1.2");
  EXPECT_EQ(schedule_from_string("0.1.1.2"), (Schedule{0, 1, 1, 2}));
  EXPECT_EQ(schedule_from_string("-"), Schedule{});
  EXPECT_EQ(schedule_from_string(""), Schedule{});
  EXPECT_EQ(schedule_from_string("7"), Schedule{7});
}

// Dekker's store-buffer litmus. Under the checker's sequentially consistent
// exploration exactly three outcomes exist; (0,0) would need real store
// buffering, which interleaving semantics cannot produce.
TEST(CheckEngine, StoreBufferExploresAllScOutcomes) {
  std::set<std::pair<int, int>> outcomes;
  Options opt;
  opt.max_preemptions = 2;
  const Result res = explore(opt, [&] {
    Atomic<int> x{0};
    Atomic<int> y{0};
    int r1 = -1;
    int r2 = -1;
    osn::check::spawn([&] {
      x.store(1);
      r1 = y.load();
    });
    osn::check::spawn([&] {
      y.store(1);
      r2 = x.load();
    });
    osn::check::join_all();
    outcomes.insert({r1, r2});
  });
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.runs, 3u);
  const std::set<std::pair<int, int>> want{{0, 1}, {1, 0}, {1, 1}};
  EXPECT_EQ(outcomes, want);
}

// With a zero preemption budget only the serial schedules remain: the body
// spawns two threads and joins, so the lone decision is which runs first.
TEST(CheckEngine, ZeroBudgetRunsSerialSchedulesOnly) {
  std::set<std::pair<int, int>> outcomes;
  Options opt;
  opt.max_preemptions = 0;
  const Result res = explore(opt, [&] {
    Atomic<int> x{0};
    Atomic<int> y{0};
    int r1 = -1;
    int r2 = -1;
    osn::check::spawn([&] {
      x.store(1);
      r1 = y.load();
    });
    osn::check::spawn([&] {
      y.store(1);
      r2 = x.load();
    });
    osn::check::join_all();
    outcomes.insert({r1, r2});
  });
  EXPECT_TRUE(res.exhausted);
  EXPECT_EQ(res.runs, 2u);
  const std::set<std::pair<int, int>> want{{0, 1}, {1, 0}};
  EXPECT_EQ(outcomes, want);
}

// Seen-state pruning collapses commuting interleavings: same final states,
// strictly fewer executed runs than the unpruned search. Relaxed constant
// stores to disjoint atomics make different orders converge to identical
// fingerprints (e.g. A·BB·AA and AA·BB·A meet with equal op counts and two
// preemptions spent); the budget must leave such met states a real decision,
// hence three preemptions.
TEST(CheckEngine, StateHashingPrunesWithoutChangingOutcomes) {
  auto run_with = [](bool hashing, std::set<std::pair<int, int>>& outcomes) {
    Options opt;
    opt.max_preemptions = 3;
    opt.state_hashing = hashing;
    return explore(opt, [&] {
      Atomic<int> x{0};
      Atomic<int> y{0};
      osn::check::spawn([&] {
        for (int i = 0; i < 4; ++i) x.store(7, std::memory_order_relaxed);
      });
      osn::check::spawn([&] {
        for (int i = 0; i < 4; ++i) y.store(9, std::memory_order_relaxed);
      });
      osn::check::join_all();
      outcomes.insert({x.load(), y.load()});
    });
  };
  std::set<std::pair<int, int>> with_hash;
  std::set<std::pair<int, int>> without_hash;
  const Result pruned = run_with(true, with_hash);
  const Result full = run_with(false, without_hash);
  EXPECT_TRUE(pruned.exhausted);
  EXPECT_TRUE(full.exhausted);
  EXPECT_EQ(with_hash, without_hash);
  EXPECT_EQ(with_hash, (std::set<std::pair<int, int>>{{7, 9}}));
  EXPECT_LT(pruned.runs, full.runs);
  EXPECT_GT(pruned.pruned, 0u);
}

// A racy read-modify-write (plain load + store instead of fetch_add) loses
// updates under some interleaving; the litmus invariant catches it and the
// reported schedule replays to the identical failure.
TEST(CheckEngine, LostUpdateIsFoundAndReplays) {
  auto body = [] {
    Atomic<int> x{0};
    auto bump = [&] {
      const int v = x.load(std::memory_order_relaxed);
      x.store(v + 1, std::memory_order_relaxed);
    };
    osn::check::spawn(bump);
    osn::check::spawn(bump);
    osn::check::join_all();
    OSN_CHECK(x.load() == 2);
  };

  std::string schedule;
  std::string message;
  try {
    explore(Options{}, body);
    FAIL() << "checker missed the lost update";
  } catch (const CheckFailure& f) {
    schedule = f.schedule();
    message = f.what();
  }
  EXPECT_NE(message.find("litmus invariant failed"), std::string::npos);
  EXPECT_NE(schedule, "-");

  Options replay;
  replay.replay = schedule;
  try {
    explore(replay, body);
    FAIL() << "replay did not reproduce the failure";
  } catch (const CheckFailure& f) {
    EXPECT_EQ(std::string(f.what()), message);
    EXPECT_EQ(f.schedule(), schedule);
  }
}

// Publishing plain data with a relaxed flag store is a torn-write-visibility
// bug: the reader's acquire load synchronizes with nothing, so its plain read
// races the writer even in an SC interleaving. The vector clocks catch it.
TEST(CheckEngine, RelaxedPublishIsReportedAsRace) {
  auto body = [](std::memory_order publish_order) {
    return [publish_order] {
      Cell<int> data{0};
      Atomic<int> flag{0};
      osn::check::spawn([&] {
        data.store(42);
        flag.store(1, publish_order);
      });
      osn::check::spawn([&] {
        if (flag.load(std::memory_order_acquire) == 1) OSN_CHECK(data.load() == 42);
      });
      osn::check::join_all();
    };
  };

  try {
    explore(Options{}, body(std::memory_order_relaxed));
    FAIL() << "checker missed the torn-write race";
  } catch (const CheckFailure& f) {
    EXPECT_NE(std::string(f.what()).find("data race"), std::string::npos);
    // The race replays deterministically too.
    Options replay;
    replay.replay = f.schedule();
    EXPECT_THROW(explore(replay, body(std::memory_order_relaxed)), CheckFailure);
  }

  // The exact same body with a release publish is clean — and exhaustively so.
  const Result res = explore(Options{}, body(std::memory_order_release));
  EXPECT_TRUE(res.exhausted);
}

// OSN_ASSERT contract violations on checker threads surface as replayable
// CheckFailures (via the thread-local assert handler), not process aborts.
TEST(CheckEngine, ContractViolationBecomesCheckFailure) {
  auto body = [] {
    Atomic<int> x{0};
    osn::check::spawn([&] {
      x.store(1);
      OSN_ASSERT_MSG(x.load() == 0, "deliberate contract violation");
    });
    osn::check::join_all();
  };
  try {
    explore(Options{}, body);
    FAIL() << "contract violation did not fail the run";
  } catch (const CheckFailure& f) {
    const std::string what = f.what();
    EXPECT_NE(what.find("contract violated"), std::string::npos);
    EXPECT_NE(what.find("deliberate contract violation"), std::string::npos);
  }
}

// The max_runs safety valve reports an explicit failure (rather than a
// silent partial result) unless exhaustiveness is waived.
TEST(CheckEngine, MaxRunsGuard) {
  auto body = [] {
    Atomic<int> x{0};
    Atomic<int> y{0};
    osn::check::spawn([&] {
      x.store(1);
      (void)y.load();
    });
    osn::check::spawn([&] {
      y.store(1);
      (void)x.load();
    });
    osn::check::join_all();
  };
  Options strict;
  strict.max_runs = 2;
  EXPECT_THROW(explore(strict, body), CheckFailure);

  Options lax;
  lax.max_runs = 2;
  lax.require_exhaustive = false;
  const Result res = explore(lax, body);
  EXPECT_FALSE(res.exhausted);
  EXPECT_LE(res.runs, 2u);
}

}  // namespace
