#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace osn::sim {
namespace {

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SimultaneousEventsFireFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.schedule_at(5, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  TimeNs fired_at = 0;
  e.schedule_at(100, [&] { e.schedule_after(50, [&] { fired_at = e.now(); }); });
  e.run();
  EXPECT_EQ(fired_at, 150u);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(10, [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.fired_count(), 0u);
}

TEST(Engine, CancelFromEarlierCallback) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(20, [&] { fired = true; });
  e.schedule_at(10, [&] { e.cancel(id); });
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAlreadyFiredIsNoop) {
  Engine e;
  const EventId id = e.schedule_at(10, [] {});
  e.run();
  e.cancel(id);  // must not crash
  EXPECT_EQ(e.pending_count(), 0u);
}

TEST(Engine, PendingReflectsQueue) {
  Engine e;
  const EventId id = e.schedule_at(10, [] {});
  EXPECT_TRUE(e.pending(id));
  e.run();
  EXPECT_FALSE(e.pending(id));
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine e;
  std::vector<TimeNs> fired;
  e.schedule_at(10, [&] { fired.push_back(10); });
  e.schedule_at(20, [&] { fired.push_back(20); });
  e.schedule_at(30, [&] { fired.push_back(30); });
  e.run_until(20);
  EXPECT_EQ(fired, (std::vector<TimeNs>{10, 20}));
  EXPECT_EQ(e.now(), 20u);
  e.run_until(100);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(e.now(), 100u);
}

TEST(Engine, StopBreaksRun) {
  Engine e;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    e.schedule_at(static_cast<TimeNs>(i), [&] {
      if (++count == 3) e.stop();
    });
  e.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(e.pending_count(), 7u);
}

TEST(Engine, SchedulingIntoThePastDies) {
  Engine e;
  e.schedule_at(100, [&] { EXPECT_DEATH(e.schedule_at(50, [] {}), "past"); });
  e.run();
}

TEST(Engine, SelfReschedulingChain) {
  Engine e;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 100) e.schedule_after(10, hop);
  };
  e.schedule_at(0, hop);
  e.run();
  EXPECT_EQ(hops, 100);
  EXPECT_EQ(e.now(), 990u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      e.schedule_at(static_cast<TimeNs>((i * 37) % 20), [&order, i] { order.push_back(i); });
    }
    e.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, FiredCountCounts) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(static_cast<TimeNs>(i), [] {});
  e.run();
  EXPECT_EQ(e.fired_count(), 5u);
}

// Regression for the lazy-cancellation heap leak: a rearm-heavy workload
// (cancel a far-future timer, schedule a new one, forever — exactly what a
// watchdog or a repeatedly-reset timeout does) used to grow the heap by one
// stale entry per cycle, O(cycles) memory. With amortized compaction the heap
// must stay within a small constant factor of the live-event count.
TEST(Engine, RearmedTimerCancellationDoesNotLeakHeap) {
  Engine e;
  constexpr std::uint64_t kCycles = 1'000'000;
  EventId timer = e.schedule_at(kCycles + 1000, [] {});
  for (std::uint64_t i = 1; i <= kCycles; ++i) {
    e.cancel(timer);
    timer = e.schedule_at(kCycles + 1000 + i, [] {});
  }
  EXPECT_EQ(e.pending_count(), 1u);
  // One live event; compaction keeps the heap's stale residue bounded
  // (compact triggers at 2x live, and the minimum-heap floor is 64).
  EXPECT_LE(e.queued_count(), 128u);
  // The surviving timer still fires correctly after all that churn.
  bool fired = false;
  e.cancel(timer);
  e.schedule_at(kCycles + 2000, [&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(e.pending_count(), 0u);
}

TEST(Engine, CompactionPreservesOrderAndFifoTies) {
  Engine e;
  std::vector<int> order;
  std::vector<EventId> doomed;
  // Interleave survivors with victims, then cancel enough to force a
  // compaction mid-stream; survivors must still fire in (time, seq) order.
  for (int i = 0; i < 200; ++i) {
    e.schedule_at(static_cast<TimeNs>(100 + i % 3), [&order, i] { order.push_back(i); });
    doomed.push_back(e.schedule_at(500, [] {}));
    doomed.push_back(e.schedule_at(600, [] {}));
  }
  for (const EventId id : doomed) e.cancel(id);
  EXPECT_EQ(e.pending_count(), 200u);
  e.run();
  ASSERT_EQ(order.size(), 200u);
  // Same (time, insertion) order a compaction-free engine would produce.
  std::vector<int> expected;
  for (int t = 0; t < 3; ++t)
    for (int i = 0; i < 200; ++i)
      if (i % 3 == t) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace osn::sim
