// Noise-to-scale extrapolation: profile extraction and order-statistics
// amplification properties.
#include <gtest/gtest.h>

#include "noise/scalability.hpp"
#include "trace_builder.hpp"

namespace osn::noise {
namespace {

using osn::testing::TraceBuilder;
using trace::EventType;

trace::TraceModel noisy_model(std::size_t events, DurNs each, TimeNs duration) {
  TraceBuilder b(1);
  b.task(1, "app", true);
  const TimeNs spacing = duration / (events + 1);
  for (std::size_t i = 0; i < events; ++i) {
    const TimeNs t0 = spacing * (i + 1);
    b.pair(0, t0, t0 + each, 1, EventType::kIrqEntry, 0);
  }
  return b.build(duration);
}

TEST(NoiseProfile, ExtractsRateAndDurations) {
  // 100 events of 2 us over 1 s, one rank.
  const auto model = noisy_model(100, 2'000, kNsPerSec);
  NoiseAnalysis analysis(model);
  const NoiseProfile p = NoiseProfile::from_analysis(analysis);
  EXPECT_EQ(p.durations.size(), 100u);
  EXPECT_NEAR(p.events_per_sec, 100.0, 1e-6);
  EXPECT_NEAR(p.mean_duration_ns, 2'000.0, 1e-6);
  EXPECT_NEAR(p.noise_fraction, 100.0 * 2'000.0 / 1e9, 1e-9);
}

TEST(NoiseProfile, EmptyTraceGivesZeroProfile) {
  const auto model = TraceBuilder(1).task(1, "app", true).build(kNsPerSec);
  NoiseAnalysis analysis(model);
  const NoiseProfile p = NoiseProfile::from_analysis(analysis);
  EXPECT_TRUE(p.durations.empty());
  EXPECT_EQ(p.events_per_sec, 0.0);
}

TEST(Scalability, NoNoiseMeansNoSlowdown) {
  NoiseProfile p;  // empty
  const auto points = extrapolate_scalability(p, {1, 1024});
  for (const auto& pt : points) {
    EXPECT_DOUBLE_EQ(pt.slowdown, 1.0);
    EXPECT_DOUBLE_EQ(pt.efficiency, 1.0);
  }
}

TEST(Scalability, SlowdownMonotonicInRanks) {
  const auto model = noisy_model(2000, 5'000, kNsPerSec);
  NoiseAnalysis analysis(model);
  const NoiseProfile p = NoiseProfile::from_analysis(analysis);
  ScalabilityParams params;
  params.iterations = 150;
  const auto points = extrapolate_scalability(p, {1, 8, 64, 512}, params);
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GE(points[i].slowdown, points[i - 1].slowdown);
  EXPECT_GT(points.back().slowdown, points.front().slowdown);
}

TEST(Scalability, HeavyTailAmplifiesFasterThanUniformNoise) {
  // Same mean noise, different shape: 1000 x 10 us vs 10 x 1 ms.
  TraceBuilder uniform(1), tailed(1);
  uniform.task(1, "app", true);
  tailed.task(1, "app", true);
  for (std::size_t i = 0; i < 1000; ++i) {
    const TimeNs t0 = 900'000 * (i + 1);
    uniform.pair(0, t0, t0 + 10'000, 1, EventType::kIrqEntry, 0);
  }
  for (std::size_t i = 0; i < 10; ++i) {
    const TimeNs t0 = 90'000'000 * (i + 1);
    tailed.pair(0, t0, t0 + 1'000'000, 1, EventType::kPageFaultEntry, 0);
  }
  const auto uniform_model = uniform.build(kNsPerSec);
  const auto tailed_model = tailed.build(kNsPerSec);
  NoiseAnalysis ua(uniform_model), ta(tailed_model);
  ScalabilityParams params;
  params.iterations = 300;
  const auto up = extrapolate_scalability(NoiseProfile::from_analysis(ua), {4096}, params);
  const auto tp = extrapolate_scalability(NoiseProfile::from_analysis(ta), {4096}, params);
  // At scale, somebody always absorbs a 1 ms event per window in the tailed
  // case; uniform noise concentrates near its mean.
  EXPECT_GT(tp[0].slowdown, up[0].slowdown);
}

TEST(Scalability, CoarserGranularityReducesRelativeLoss) {
  const auto model = noisy_model(2000, 5'000, kNsPerSec);
  NoiseAnalysis analysis(model);
  const NoiseProfile p = NoiseProfile::from_analysis(analysis);
  ScalabilityParams fine, coarse;
  fine.granularity = 1 * kNsPerMs;
  fine.iterations = 150;
  coarse.granularity = 100 * kNsPerMs;
  coarse.iterations = 50;
  const double fine_loss =
      extrapolate_scalability(p, {1024}, fine)[0].slowdown - 1.0;
  const double coarse_loss =
      extrapolate_scalability(p, {1024}, coarse)[0].slowdown - 1.0;
  EXPECT_GT(fine_loss, coarse_loss);
}

TEST(Scalability, DeterministicGivenSeed) {
  const auto model = noisy_model(500, 3'000, kNsPerSec);
  NoiseAnalysis analysis(model);
  const NoiseProfile p = NoiseProfile::from_analysis(analysis);
  const auto a = extrapolate_scalability(p, {64});
  const auto b = extrapolate_scalability(p, {64});
  EXPECT_DOUBLE_EQ(a[0].slowdown, b[0].slowdown);
}

TEST(Mitigation, AbsorbingEverythingRemovesSlowdown) {
  const auto model = noisy_model(500, 5'000, kNsPerSec);
  NoiseAnalysis analysis(model);
  const auto est = estimate_mitigation(
      analysis, {NoiseCategory::kPeriodic}, 1024);  // all events are periodic
  EXPECT_GT(est.baseline.slowdown, 1.0);
  EXPECT_DOUBLE_EQ(est.mitigated.slowdown, 1.0);
  EXPECT_GT(est.speedup, 1.0);
}

TEST(Mitigation, AbsorbingUnrelatedCategoryChangesNothing) {
  const auto model = noisy_model(500, 5'000, kNsPerSec);
  NoiseAnalysis analysis(model);
  const auto est = estimate_mitigation(analysis, {NoiseCategory::kIo}, 256);
  EXPECT_NEAR(est.speedup, 1.0, 0.05);
}

}  // namespace
}  // namespace osn::noise
