#include <gtest/gtest.h>

#include "noise/ftq_compare.hpp"

namespace osn::noise {
namespace {

SyntheticChart chart_with(std::vector<DurNs> totals, DurNs quantum = 1'000'000) {
  SyntheticChart c;
  c.origin = 0;
  c.quantum = quantum;
  for (std::size_t i = 0; i < totals.size(); ++i) {
    QuantumNoise q;
    q.start = static_cast<TimeNs>(i) * quantum;
    q.total = totals[i];
    c.quanta.push_back(q);
  }
  return c;
}

std::vector<FtqQuantumSample> ftq_with(std::vector<std::uint64_t> ops,
                                       DurNs quantum = 1'000'000) {
  std::vector<FtqQuantumSample> out;
  for (std::size_t i = 0; i < ops.size(); ++i)
    out.push_back({static_cast<TimeNs>(i) * quantum, ops[i]});
  return out;
}

TEST(FtqCompare, PerfectAgreement) {
  // nmax=1000 ops of 1000 ns; noise of k ops -> k*1000 ns.
  const auto chart = chart_with({0, 3'000, 0, 7'000});
  const auto ftq = ftq_with({1000, 997, 1000, 993});
  const auto cmp = compare_ftq(ftq, 1000, 1'000, chart);
  EXPECT_NEAR(cmp.correlation, 1.0, 1e-9);
  EXPECT_EQ(cmp.mean_abs_diff_ns, 0.0);
  EXPECT_EQ(cmp.underestimated_quanta, 0u);
}

TEST(FtqCompare, FtqOverestimatesByPartialOps) {
  // Trace says 2500 ns; FTQ loses 3 whole ops (3000 ns): over, not under.
  const auto chart = chart_with({2'500});
  const auto ftq = ftq_with({997});
  const auto cmp = compare_ftq(ftq, 1000, 1'000, chart);
  EXPECT_EQ(cmp.overestimated_quanta, 1u);
  EXPECT_EQ(cmp.underestimated_quanta, 0u);
}

TEST(FtqCompare, GrossUnderestimateDetected) {
  // Trace reports 10 us; FTQ claims nothing: flagged.
  const auto chart = chart_with({10'000});
  const auto ftq = ftq_with({1000});
  const auto cmp = compare_ftq(ftq, 1000, 1'000, chart);
  EXPECT_EQ(cmp.underestimated_quanta, 1u);
}

TEST(FtqCompare, WithinOneOpToleranceNotFlagged) {
  const auto chart = chart_with({1'800});
  const auto ftq = ftq_with({1000});  // ftq 0 vs trace 1800 < 2 ops
  const auto cmp = compare_ftq(ftq, 1000, 1'000, chart);
  EXPECT_EQ(cmp.underestimated_quanta, 0u);
}

TEST(FtqCompare, UsesShorterSeries) {
  const auto chart = chart_with({0, 0});
  const auto ftq = ftq_with({1000, 1000, 1000, 1000});
  const auto cmp = compare_ftq(ftq, 1000, 1'000, chart);
  EXPECT_EQ(cmp.ftq_noise_ns.size(), 2u);
}

TEST(FtqCompare, MisalignedGridsDie) {
  const auto chart = chart_with({0, 0});
  std::vector<FtqQuantumSample> ftq{{123, 1000}, {456, 1000}};
  EXPECT_DEATH(compare_ftq(ftq, 1000, 1'000, chart), "quantum grid");
}

TEST(FtqCompare, EmptyFtqDies) {
  const auto chart = chart_with({0});
  EXPECT_DEATH(compare_ftq({}, 1000, 1'000, chart), "no FTQ samples");
}

TEST(FtqCompare, OpsAboveNmaxClampToZeroNoise) {
  const auto chart = chart_with({0});
  const auto ftq = ftq_with({1005});
  const auto cmp = compare_ftq(ftq, 1000, 1'000, chart);
  EXPECT_EQ(cmp.ftq_noise_ns[0], 0.0);
}

}  // namespace
}  // namespace osn::noise
