// Deterministic RNG: reproducibility is the foundation of every simulation
// result in this repo, so the generators get direct coverage.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace osn {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values from the SplitMix64 reference implementation.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, DistinctSeedsDistinctStreams) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, Uniform01InHalfOpenRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Xoshiro256, BoundedStaysInBound) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 10'000; ++i) ASSERT_LT(rng.bounded(bound), bound);
  }
}

TEST(Xoshiro256, BoundedZeroReturnsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Xoshiro256, BoundedApproximatelyUniform) {
  Xoshiro256 rng(13);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(bound)];
  for (std::uint64_t v = 0; v < bound; ++v)
    EXPECT_NEAR(counts[v], n / static_cast<int>(bound), n / 100);
}

TEST(Xoshiro256, SplitProducesIndependentStream) {
  Xoshiro256 parent(99);
  Xoshiro256 child = parent.split();
  // Child and parent must not track each other.
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (parent.next() == child.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, RepeatedSplitsDistinct) {
  Xoshiro256 parent(123);
  std::set<std::uint64_t> firsts;
  for (int i = 0; i < 64; ++i) {
    Xoshiro256 child = parent.split();
    firsts.insert(child.next());
  }
  EXPECT_EQ(firsts.size(), 64u);
}

TEST(Xoshiro256, SplitIsDeterministic) {
  Xoshiro256 a(5), b(5);
  Xoshiro256 ca = a.split();
  Xoshiro256 cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

}  // namespace
}  // namespace osn
